"""Process-pool experiment engine.

Every paper artifact fans out over *independent* scenario runs: the
four cells of an RSSI table, the homes of a campaign, the arms of an
ablation, the sections of the full report.  Each run is a pure
function of its arguments (testbed, speaker, deployment, seed, counts,
config), so they can execute in worker processes without changing any
result.  This module provides that executor:

* :class:`ExperimentTask` — a picklable unit of work (a module-level
  callable plus its arguments) with a stable content-addressed key.
* :class:`ExperimentEngine` — runs a batch of tasks either serially
  (``workers=1``, byte-identical to calling the functions in a loop)
  or on a ``ProcessPoolExecutor``, preserving submission order in the
  returned results.
* :func:`derive_seed` — deterministic per-task seed derivation from a
  base seed and arbitrary labels (SHA-256 based, so stable across
  processes, platforms and Python hash randomization).
* An on-disk result cache keyed by the task's arguments plus a
  code-version tag, so re-running an unchanged experiment is free and
  editing any source file under :mod:`repro` invalidates everything.

A crashed worker (killed process, segfault) surfaces as
:class:`repro.errors.ExperimentError` naming the task that was in
flight, rather than hanging the run.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import hashlib
import logging
import multiprocessing
import os
import pathlib
import pickle
import time
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.errors import ExperimentError

log = logging.getLogger(__name__)

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_SEED_SPACE = 2**32


def derive_seed(base: int, *parts: object) -> int:
    """Derive a deterministic task seed from ``base`` and any labels.

    Unlike ``hash()``, the derivation is stable across processes and
    interpreter invocations, so a task derives the same seed whether it
    runs serially, in a pool worker, or in next week's rerun.
    """
    text = "|".join([str(int(base)), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """A tag that changes whenever any source file under ``repro`` does.

    Cached results are only valid for the code that produced them; the
    tag is folded into every cache key so a source edit invalidates the
    whole cache at once (conservative, but never stale).
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _canonical(value: object) -> str:
    """A deterministic textual form of a task argument.

    Must be stable across processes: no ``id()``-bearing reprs for the
    types experiments actually pass (primitives, containers, enums,
    config dataclasses, callables).
    """
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return "{" + ",".join(f"{_canonical(k)}:{_canonical(v)}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    if callable(value):
        return f"{getattr(value, '__module__', '?')}:{getattr(value, '__qualname__', repr(value))}"
    return repr(value)


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: a module-level callable plus its arguments.

    ``fn`` must be importable by name (no lambdas/closures) so the task
    can cross a process boundary; its arguments and return value must
    be picklable.

    ``cacheable=False`` opts a task out of the on-disk result cache
    entirely — no lookup, no write — even when the engine runs with
    ``use_cache=True``.  Fleet workloads set it: a million per-chunk
    cache entries would turn the content-addressed cache into a disk
    leak for results that are cheaper to recompute than to read back.
    """

    fn: Callable[..., Any]
    args: Tuple[object, ...] = ()
    kwargs: Dict[str, object] = field(default_factory=dict)
    label: str = ""
    cacheable: bool = True

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", getattr(self.fn, "__name__", "task"))

    def cache_key(self) -> str:
        """Content-addressed key: arguments + code-version tag."""
        payload = _canonical((self.fn, self.args, self.kwargs, code_version()))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def execute(self) -> object:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class TaskTiming:
    """Structured timing/progress record for one executed task."""

    label: str
    elapsed: float
    cache_hit: bool = False
    workers: int = 1

    @property
    def source(self) -> str:
        return "cache" if self.cache_hit else "run"


def resolve_cache_dir(cache_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Cache location: explicit arg > ``$REPRO_CACHE_DIR`` > user cache."""
    if cache_dir is not None:
        return pathlib.Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "experiments"


def cache_stats(cache_dir: Optional[os.PathLike] = None) -> Dict[str, object]:
    """Entry count and byte total of the on-disk result cache."""
    directory = resolve_cache_dir(cache_dir)
    entries = 0
    total_bytes = 0
    if directory.is_dir():
        for path in directory.iterdir():
            if not path.is_file():
                continue
            if path.suffix != ".pkl" and ".tmp." not in path.name:
                continue
            try:
                total_bytes += path.stat().st_size
                entries += 1
            except OSError:
                continue
    return {"path": str(directory), "entries": entries, "bytes": total_bytes}


def prune_cache(
    cache_dir: Optional[os.PathLike] = None,
    keep_days: Optional[float] = None,
) -> Dict[str, object]:
    """Delete cached results, reporting the bytes reclaimed.

    ``keep_days`` keeps entries modified within the last N days;
    without it the whole cache goes.  Stale ``.tmp.<pid>`` spill files
    from interrupted writes are always removed.  The cache is
    content-addressed (arguments + code-version tag), so pruning can
    never make a later run incorrect — only slower.
    """
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    reclaimed = 0
    kept = 0
    if directory.is_dir():
        cutoff = None if keep_days is None else time.time() - keep_days * 86400.0
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                continue
            is_tmp = ".tmp." in path.name
            if path.suffix != ".pkl" and not is_tmp:
                continue
            try:
                stat = path.stat()
                if cutoff is not None and not is_tmp and stat.st_mtime >= cutoff:
                    kept += 1
                    continue
                path.unlink()
                removed += 1
                reclaimed += stat.st_size
            except OSError:
                kept += 1
    return {
        "path": str(directory),
        "removed": removed,
        "bytes_reclaimed": reclaimed,
        "kept": kept,
    }


def _pool_invoke(fn: Callable[..., Any], args: tuple, kwargs: dict) -> Tuple[object, float]:
    """Worker-side entry: run the task and report its own wall time."""
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


class ExperimentEngine:
    """Fans independent experiment tasks out over a process pool.

    ``workers=1`` (the default) executes in-process, in submission
    order — byte-identical to the historical serial loops.  ``workers=0``
    means "one per CPU".  Results always come back in submission order
    regardless of completion order.
    """

    def __init__(
        self,
        workers: int = 1,
        use_cache: bool = False,
        cache_dir: Optional[os.PathLike] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 0:
            raise ExperimentError(f"workers must be >= 0, got {workers!r}")
        self.workers = workers if workers > 0 else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.progress = progress
        self.timings: List[TaskTiming] = []
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache -------------------------------------------------------------
    def _cache_path(self, task: ExperimentTask) -> pathlib.Path:
        name = getattr(task.fn, "__name__", "task")
        return self.cache_dir / f"{name}-{task.cache_key()[:40]}.pkl"

    def _cache_load(self, task: ExperimentTask) -> Tuple[bool, object]:
        path = self._cache_path(task)
        if not path.exists():
            return False, None
        try:
            with path.open("rb") as handle:
                return True, pickle.load(handle)
        except Exception:
            # Corrupt or unreadable entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def _cache_store(self, task: ExperimentTask, value: object) -> None:
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_path(task)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            # Caching is best-effort; an unwritable cache never fails a run.
            pass

    # -- progress ----------------------------------------------------------
    def _emit(self, message: str) -> None:
        if self.progress:
            self.progress(message)

    # -- execution ---------------------------------------------------------
    def run(self, tasks: Sequence[ExperimentTask]) -> List[object]:
        """Execute ``tasks``; returns their results in submission order."""
        tasks = list(tasks)
        results: List[object] = [None] * len(tasks)
        pending: List[int] = []
        for index, task in enumerate(tasks):
            if self.use_cache and task.cacheable:
                hit, value = self._cache_load(task)
                if hit:
                    results[index] = value
                    self.cache_hits += 1
                    self.timings.append(TaskTiming(task.label, 0.0, cache_hit=True,
                                                   workers=self.workers))
                    self._emit(f"cached {task.label}")
                    continue
                self.cache_misses += 1
            pending.append(index)

        if self.workers <= 1 or len(pending) <= 1:
            self._run_serial(tasks, pending, results)
        else:
            self._run_pool(tasks, pending, results)
        return results

    def _finish(self, task: ExperimentTask, value: object, elapsed: float) -> None:
        self.timings.append(TaskTiming(task.label, elapsed, workers=self.workers))
        if self.use_cache and task.cacheable:
            self._cache_store(task, value)

    def _run_serial(self, tasks, pending, results) -> None:
        for index in pending:
            task = tasks[index]
            self._emit(f"running {task.label}...")
            start = time.perf_counter()
            value = task.execute()
            results[index] = value
            self._finish(task, value, time.perf_counter() - start)

    def _make_pool(self, width: int) -> concurrent.futures.ProcessPoolExecutor:
        # Fork start-up is near-free and inherits imported modules; fall
        # back to the platform default (spawn) where fork is unavailable.
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=width, mp_context=context,
        )

    def _run_pool(self, tasks, pending, results) -> None:
        pool = self._make_pool(min(self.workers, len(pending)))
        futures = {}
        try:
            for index in pending:
                task = tasks[index]
                self._emit(f"running {task.label}...")
                futures[pool.submit(_pool_invoke, task.fn, task.args,
                                    dict(task.kwargs))] = index
            done = 0
            while futures:
                ready, _ = concurrent.futures.wait(
                    futures, return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in ready:
                    # Dropping the future releases the engine's handle on
                    # the pickled result as soon as it lands in `results`.
                    index = futures.pop(future)
                    task = tasks[index]
                    try:
                        value, elapsed = future.result()
                    except concurrent.futures.process.BrokenProcessPool as exc:
                        raise ExperimentError(
                            f"worker crashed while running {task.label!r} "
                            f"(pool of {self.workers} broken): {exc}"
                        ) from exc
                    results[index] = value
                    self._finish(task, value, elapsed)
                    done += 1
                    self._emit(f"finished {task.label} "
                               f"({done}/{len(pending)}, {elapsed:.1f}s)")
        finally:
            # cancel_futures stops queued tasks after a failure; waiting
            # joins the workers so nothing lingers past the run.
            pool.shutdown(wait=True, cancel_futures=True)

    # -- streaming execution ------------------------------------------------
    def run_fold(
        self,
        tasks: Iterable[ExperimentTask],
        fold: Callable[[Any, object, ExperimentTask], Any],
        initial: Any = None,
        window: Optional[int] = None,
    ) -> Tuple[Any, int]:
        """Stream ``tasks`` through the engine with constant memory.

        ``tasks`` may be any iterable — a generator over a million
        chunks never materializes a task list, and each completed
        result is folded into the accumulator via
        ``fold(accumulator, result, task)`` and then *released*: the
        engine holds at most ``window`` tasks in flight (default
        ``4 * workers``) and never a per-task result list.

        Returns ``(accumulator, task_count)``.

        Serially (``workers=1``) results fold in submission order; on a
        pool they fold in *completion* order, so ``fold`` must be
        commutative and associative for the outcome to be independent
        of worker count — the fleet reducers (integer counters,
        mergeable sketches, :func:`repro.obs.metrics.merge_snapshots`)
        all are.
        """
        accumulator = initial
        count = 0
        iterator: Iterator[ExperimentTask] = iter(tasks)

        if self.workers <= 1:
            for task in iterator:
                value = self._fold_one_serial(task)
                accumulator = fold(accumulator, value, task)
                count += 1
            return accumulator, count

        window = window if window and window > 0 else 4 * self.workers
        pool = self._make_pool(self.workers)
        in_flight: Dict[concurrent.futures.Future, ExperimentTask] = {}
        try:
            while True:
                # Top up to the backpressure window; cache hits fold
                # immediately without occupying a slot.
                while len(in_flight) < window:
                    task = next(iterator, None)
                    if task is None:
                        break
                    if self.use_cache and task.cacheable:
                        hit, value = self._cache_load(task)
                        if hit:
                            self.cache_hits += 1
                            self.timings.append(TaskTiming(
                                task.label, 0.0, cache_hit=True,
                                workers=self.workers))
                            accumulator = fold(accumulator, value, task)
                            count += 1
                            continue
                        self.cache_misses += 1
                    self._emit(f"running {task.label}...")
                    in_flight[pool.submit(_pool_invoke, task.fn, task.args,
                                          dict(task.kwargs))] = task
                if not in_flight:
                    break
                ready, _ = concurrent.futures.wait(
                    in_flight, return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in ready:
                    task = in_flight.pop(future)
                    try:
                        value, elapsed = future.result()
                    except concurrent.futures.process.BrokenProcessPool as exc:
                        raise ExperimentError(
                            f"worker crashed while running {task.label!r} "
                            f"(pool of {self.workers} broken): {exc}"
                        ) from exc
                    self._finish(task, value, elapsed)
                    accumulator = fold(accumulator, value, task)
                    count += 1
                    self._emit(f"folded {task.label} ({count} done, "
                               f"{elapsed:.1f}s)")
                    del value
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return accumulator, count

    def _fold_one_serial(self, task: ExperimentTask) -> object:
        if self.use_cache and task.cacheable:
            hit, value = self._cache_load(task)
            if hit:
                self.cache_hits += 1
                self.timings.append(TaskTiming(task.label, 0.0, cache_hit=True,
                                               workers=self.workers))
                self._emit(f"cached {task.label}")
                return value
            self.cache_misses += 1
        self._emit(f"running {task.label}...")
        start = time.perf_counter()
        value = task.execute()
        self._finish(task, value, time.perf_counter() - start)
        return value


def run_tasks(
    tasks: Sequence[ExperimentTask],
    workers: int = 1,
    use_cache: bool = False,
    cache_dir: Optional[os.PathLike] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[object]:
    """One-shot convenience: build an engine, run, return the results."""
    engine = ExperimentEngine(workers=workers, use_cache=use_cache,
                              cache_dir=cache_dir, progress=progress)
    return engine.run(tasks)


def collect_metric_snapshots(results: Sequence[object]) -> List[dict]:
    """Pull ``metrics`` snapshots out of heterogeneous task results.

    Results without a snapshot (older cache entries, tasks that don't
    collect metrics) are skipped so a mixed batch still folds — but no
    longer *silently*: a counted warning is logged, because a fleet
    aggregation that quietly dropped homes would under-report every
    population metric downstream.
    """
    snapshots: List[dict] = []
    missing = 0
    for result in results:
        snapshot = getattr(result, "metrics", None)
        if snapshot is None and isinstance(result, dict):
            snapshot = result.get("metrics")
        if isinstance(snapshot, dict):
            snapshots.append(snapshot)
        else:
            missing += 1
    if missing:
        log.warning(
            "collect_metric_snapshots: %d of %d results carried no metrics "
            "snapshot; the merged metrics under-report by those runs",
            missing, len(results),
        )
    return snapshots
