"""Figure 4: the Traffic Handler's three cases.

Case I   — no proxy: the cloud's reply arrives ~40 ms after the
           command packets leave the speaker.
Case II  — proxy holds the command records while the Decision Module
           works, then releases them; the reply arrives right after
           the release and the session stays intact.
Case III — proxy holds, the verdict is malicious, the records are
           discarded; the next forwarded record desynchronizes the TLS
           record sequence and the cloud closes the session (and the
           speaker observably reconnects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.audio.speech import full_utterance_duration
from repro.audio.voiceprint import replay_of
from repro.core.decision import Verdict
from repro.experiments.scenarios import Scenario, build_scenario


@dataclass
class Fig4Case:
    name: str
    command_sent_at: float  # when the final command record left the speaker
    reply_at: Optional[float]  # cloud's directive reaching the speaker
    hold_duration: Optional[float]
    session_closed: bool
    tls_violation: bool
    reconnected: bool
    executed: bool

    @property
    def reply_delay(self) -> Optional[float]:
        if self.reply_at is None:
            return None
        return self.reply_at - self.command_sent_at


@dataclass
class Fig4Result:
    cases: List[Fig4Case] = field(default_factory=list)

    def case(self, name: str) -> Fig4Case:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def render(self) -> str:
        """Render as paper-style text."""
        lines = ["Figure 4: Traffic Handler cases", "=" * 34]
        for case in self.cases:
            reply = f"{case.reply_delay:.3f}s" if case.reply_delay is not None else "none"
            hold = f"{case.hold_duration:.3f}s" if case.hold_duration is not None else "-"
            lines.append(
                f"{case.name:10s} reply_after={reply:>8s} hold={hold:>8s} "
                f"executed={case.executed} tls_violation={case.tls_violation} "
                f"session_closed={case.session_closed} reconnected={case.reconnected}"
            )
        return "\n".join(lines)


def _issue_command(scenario: Scenario, rng_name: str) -> tuple:
    env = scenario.env
    owner = scenario.owners[0]
    rng = env.rng.stream(rng_name)
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    utterance = owner.speak(command.text, duration)
    env.play_utterance(utterance, owner.device_position())
    return utterance, duration


def _watch_directive(scenario: Scenario, sink: List[float]) -> None:
    """Record when the cloud's directive record reaches the speaker."""
    speaker = scenario.speaker
    original = speaker._on_avs_record

    def wrapped(conn, packet):
        if packet.meta.get("directive"):
            sink.append(scenario.env.sim.now)
        original(conn, packet)

    speaker._on_avs_record = wrapped
    # Re-point the live connection's callback too.
    if speaker._conn is not None:
        speaker._conn.on_record = wrapped


def run_fig4(seed: int = 9) -> Fig4Result:
    """Reproduce all three handler cases on the Echo Dot."""
    result = Fig4Result()

    # -- Case I: no guard installed ------------------------------------
    scenario = build_scenario(
        "house", "echo", seed=seed, owner_count=1,
        with_guard=False, with_floor_tracking=False, calibrate=False,
    )
    env = scenario.env
    scenario.owners[0].teleport(env.testbed.device_point(5).offset(dz=-1.0))
    directives: List[float] = []
    _watch_directive(scenario, directives)
    utterance, duration = _issue_command(scenario, "fig4.case1")
    command_done = env.sim.now + duration + 0.2
    env.sim.run_for(duration + 12.0)
    record = list(scenario.speaker.interactions.values())[-1]
    result.cases.append(Fig4Case(
        name="case I",
        command_sent_at=command_done,
        reply_at=directives[0] if directives else None,
        hold_duration=None,
        session_closed=False,
        tls_violation=False,
        reconnected=False,
        executed=record.executed_at is not None,
    ))

    # -- Case II: hold and release ------------------------------------------
    scenario = build_scenario(
        "house", "echo", seed=seed + 1, owner_count=1, with_floor_tracking=False,
    )
    env = scenario.env
    scenario.owners[0].teleport(env.testbed.device_point(5).offset(dz=-1.0))
    directives = []
    _watch_directive(scenario, directives)
    utterance, duration = _issue_command(scenario, "fig4.case2")
    command_done = env.sim.now + duration + 0.2
    env.sim.run_for(duration + 14.0)
    record = list(scenario.speaker.interactions.values())[-1]
    events = [e for e in scenario.guard.log.commands() if e.verdict is Verdict.LEGITIMATE]
    hold = events[-1].hold_duration if events else None
    result.cases.append(Fig4Case(
        name="case II",
        command_sent_at=command_done,
        reply_at=directives[0] if directives else None,
        hold_duration=hold,
        session_closed=False,
        tls_violation=bool(scenario.avs_cloud.stats.tls_violations),
        reconnected=scenario.speaker.reconnect_count > 0,
        executed=record.executed_at is not None,
    ))

    # -- Case III: hold and discard ------------------------------------------
    scenario = build_scenario(
        "house", "echo", seed=seed + 2, owner_count=1, with_floor_tracking=False,
    )
    env = scenario.env
    # Owner far away (kitchen); a replay attack plays in the living room.
    scenario.owners[0].teleport(env.testbed.device_point(30).offset(dz=-1.0))
    rng = env.rng.stream("fig4.case3")
    command = scenario.corpus.sample(rng)
    duration = full_utterance_duration(command, rng)
    live = scenario.owners[0].speak(command.text, duration)
    attack = replay_of(live, rng)
    env.play_utterance(attack, env.testbed.device_point(3))
    command_done = env.sim.now + duration + 0.2
    env.sim.run_for(duration + 20.0)
    record = list(scenario.speaker.interactions.values())[-1]
    events = [e for e in scenario.guard.log.commands() if e.discarded_at is not None]
    hold = events[-1].hold_duration if events else None
    result.cases.append(Fig4Case(
        name="case III",
        command_sent_at=command_done,
        reply_at=None,
        hold_duration=hold,
        session_closed=scenario.avs_cloud.stats.sessions_closed > 0,
        tls_violation=bool(scenario.avs_cloud.stats.tls_violations),
        reconnected=scenario.speaker.reconnect_count > 0,
        executed=record.executed_at is not None,
    ))
    return result
