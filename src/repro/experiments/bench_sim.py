"""Sim-kernel benchmark: legacy event loop vs the churn-free kernel.

Runs the same house/echo workload twice per cell — once under
:func:`repro.sim.compat.use_legacy_kernel` (the pre-optimization queue,
cancel+re-push timers, ungated motion polling, and per-packet network
path, all kept runnable so the "before" cost stays measurable) and once
on the current kernel — and times only the workload phase.

Two cells:

``compressed_gap``
    The default workload: ~1 minute of idle between command episodes.
    Packet and guard work dominate, so this cell reports the honest
    hot-path speedup (~2x).

``seven_day``
    The paper's real timeline: the same ~160 episodes spread over seven
    days (``episode_gap=(2700, 4800)``).  The legacy kernel pays for
    every idle heartbeat timer re-arm and 0.25 s motion-sensor poll
    across ~600k simulated seconds; the current kernel sleeps through
    the idle stretches.  This is where the >= 5x acceptance bar lives.

Before any timing is reported, the guard's command-event stream and the
final simulated clock are asserted **equal** between the two kernels —
a speedup that changed a single event would be a bug, not a win.

Run it with ``python -m repro bench-sim`` (or
``benchmarks/run_benches.sh``); the committed artifact lives at
``benchmarks/results/BENCH_sim.json``.
"""

from __future__ import annotations

import gc
import json
import pathlib
import platform
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim import compat

# The Table II house/echo/loc1 cell counts (paper totals), and the
# short variant CI's bench-smoke job runs.
FULL_COUNTS = (91, 69)
SMOKE_COUNTS = (10, 7)

# Idle gap between command episodes, per cell (seconds).  ``None``
# means the workload default (compressed, ~1 min).  The seven-day gap
# spreads the full episode count over ~6.9 simulated days, matching
# the paper's real capture timeline.
SEVEN_DAY_GAP = (2700.0, 4800.0)

CELLS = (
    ("compressed_gap", None),
    ("seven_day", SEVEN_DAY_GAP),
)

SEVEN_DAY_FLOOR = 5.0  # the ISSUE's acceptance bar for the 7-day cell


def guard_event_stream(guard) -> List[tuple]:
    """The guard's command-event stream, as comparable tuples.

    This is the byte-identity oracle: every field that decides a
    detection outcome (timestamps, classifications, verdicts, packet
    counts, held records, RSSI report reprs) in event order.
    """
    stream = []
    for event in guard.log.events:
        stream.append((
            event.window_id,
            event.flow_id,
            event.speaker_ip,
            event.protocol,
            event.opened_at,
            event.classification.value if event.classification else None,
            event.classified_at,
            event.classify_packet_count,
            event.verdict.value if event.verdict else None,
            event.verdict_at,
            event.released_at,
            event.discarded_at,
            event.held_records,
            tuple(repr(report) for report in event.rssi_reports),
        ))
    return stream


def _run_cell(
    legacy: bool,
    seed: int,
    legit: int,
    malicious: int,
    episode_gap: Optional[Tuple[float, float]],
) -> Tuple[float, List[tuple], float]:
    """One workload run; returns (workload seconds, stream, sim.now).

    Scenario construction is excluded from the timing (it is identical
    work either way); the clock starts when the workload starts.
    """
    from repro.experiments.scenarios import build_scenario
    from repro.experiments.workload import SevenDayWorkload

    compat.use_legacy_kernel(legacy)
    gc_was_enabled = gc.isenabled()
    try:
        scenario = build_scenario("house", "echo", deployment=0, seed=seed,
                                  owner_count=2, tracing=False)
        workload = SevenDayWorkload(scenario, episode_gap=episode_gap)
        # Collector pauses depend on how much garbage *previous* runs
        # left behind, which would let one kernel's timing leak into
        # the other's.  Neither kernel creates reference cycles, so
        # timing with the collector off is fair to both; one explicit
        # collection first puts every run behind the same start line.
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        workload.run(legit, malicious)
        scenario.speaker.settle_all()
        elapsed = time.perf_counter() - start
        return elapsed, guard_event_stream(scenario.guard), scenario.sim.now
    finally:
        if gc_was_enabled:
            gc.enable()
        compat.use_legacy_kernel(False)


def run_bench_sim(seed: int = 11, repeats: int = 2, smoke: bool = False) -> Dict:
    """Time legacy vs current kernel on both cells; returns the payload.

    Runs are interleaved (current, legacy, current, legacy, ...) and the
    minimum per mode is reported, which cancels warm-up and allocator
    drift.  Equality of the guard event streams and of the final
    simulated clock is asserted on every run before any number is
    published.
    """
    legit, malicious = SMOKE_COUNTS if smoke else FULL_COUNTS
    repeats = 1 if smoke else max(1, repeats)
    cells: Dict[str, Dict] = {}
    for cell_name, gap in CELLS:
        fast_times: List[float] = []
        legacy_times: List[float] = []
        reference_stream: Optional[List[tuple]] = None
        reference_now: Optional[float] = None
        for _ in range(repeats):
            for legacy in (False, True):
                elapsed, stream, now = _run_cell(legacy, seed, legit,
                                                 malicious, gap)
                (legacy_times if legacy else fast_times).append(elapsed)
                if reference_stream is None:
                    reference_stream, reference_now = stream, now
                elif stream != reference_stream:
                    raise AssertionError(
                        f"{cell_name}: kernel changed the guard event stream "
                        f"(legacy={legacy}); refusing to time a divergent run"
                    )
                elif now != reference_now:
                    raise AssertionError(
                        f"{cell_name}: final sim clock diverged "
                        f"({now!r} != {reference_now!r}, legacy={legacy})"
                    )
        fast, legacy_best = min(fast_times), min(legacy_times)
        cells[cell_name] = {
            "episode_gap_s": list(gap) if gap else None,
            "fast_s": round(fast, 4),
            "legacy_s": round(legacy_best, 4),
            "speedup": round(legacy_best / fast, 2),
            "fast_runs_s": [round(t, 4) for t in fast_times],
            "legacy_runs_s": [round(t, 4) for t in legacy_times],
            "command_events": len(reference_stream or []),
            "sim_days": round((reference_now or 0.0) / 86400.0, 3),
            "streams_identical": True,  # asserted above, per run
        }
    return {
        "bench": "sim_kernel",
        "scenario": "house/echo/loc1",
        "legit_count": legit,
        "malicious_count": malicious,
        "seed": seed,
        "repeats": repeats,
        "smoke": smoke,
        "cells": cells,
        "speedups": {name: cells[name]["speedup"] for name, _ in CELLS},
        "seven_day_floor": SEVEN_DAY_FLOOR,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def render_bench(payload: Dict) -> str:
    """Human-readable one-screen summary of a bench payload."""
    lines = [
        f"Sim kernel bench — {payload['scenario']}, "
        f"{payload['legit_count']}+{payload['malicious_count']} commands, "
        f"seed {payload['seed']}"
        + (" (smoke: numbers not citable)" if payload["smoke"] else ""),
        "",
        f"  {'cell':<16} {'legacy':>9} {'current':>9} {'speedup':>9} "
        f"{'sim days':>9} {'events':>7}",
    ]
    for name, cell in payload["cells"].items():
        lines.append(
            f"  {name:<16} {cell['legacy_s']:>8.3f}s {cell['fast_s']:>8.3f}s "
            f"{cell['speedup']:>8.2f}x {cell['sim_days']:>9.2f} "
            f"{cell['command_events']:>7}"
        )
    lines += [
        "",
        f"  guard event streams + final sim clock: identical on every run",
        f"  acceptance: seven_day >= {payload['seven_day_floor']}x",
    ]
    return "\n".join(lines)


def write_bench(path, payload: Dict) -> None:
    """Write the machine-readable payload as JSON."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
