"""7-day experiment workloads (paper Section V-B3).

The paper's protocol: owners live in the home carrying their phones
(or wearing the watch), issuing commands from wherever they are; a
malicious guest replays pre-recorded owner commands, but *only when no
owner is in the speaker's room*.  Owners move between rooms — in the
house, using the stairs, which fires the motion sensor and exercises
the floor tracker.

Simulated time compresses the idle periods between episodes: seven
days of life contain the same ~160 command episodes the paper reports,
and nothing about detection depends on how long the home sits idle
between them, so the default inter-episode gap is about a minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.attacks.replay import ReplayAttack
from repro.audio.speech import full_utterance_duration
from repro.errors import WorkloadError
from repro.experiments.scenarios import Scenario
from repro.home.person import Person
from repro.radio.geometry import Point


@dataclass
class EpisodePlan:
    """One scheduled command episode."""

    index: int
    malicious: bool
    command_text: str
    issuer: str  # owner name or "attacker"
    owner_points: List[int]  # measurement point per owner during episode


@dataclass
class WorkloadResult:
    """Everything a run produced, for scoring."""

    episodes: List[EpisodePlan] = field(default_factory=list)
    legit_issued: int = 0
    malicious_issued: int = 0
    skipped_unheard: int = 0


class SevenDayWorkload:
    """Drives a scenario through a randomized command workload."""

    EPISODE_GAP = (45.0, 110.0)  # compressed idle between episodes
    STAIR_SETTLE = 13.0  # walk (8 s) + trace recording (ends <= ~9.5 s)
    POST_STAIR_PAUSE = 11.0  # stand at the stair exit until traces finish

    def __init__(
        self,
        scenario: Scenario,
        seed_name: str = "workload",
        episode_gap: tuple = None,
    ) -> None:
        """``episode_gap`` overrides the compressed idle window between
        episodes, e.g. ``(2700.0, 4800.0)`` spreads the ~160 episodes
        over the paper's real seven days.  The gap draw consumes exactly
        one RNG sample either way, so only the idle *lengths* change —
        which is what the kernel benchmark uses to measure idle-time
        cost without touching detection behaviour."""
        self.scenario = scenario
        self.episode_gap = self.EPISODE_GAP if episode_gap is None else episode_gap
        self.rng = scenario.env.rng.stream(f"{seed_name}.schedule")
        self.attack = ReplayAttack(
            scenario.env,
            scenario.env.rng.stream(f"{seed_name}.attacker"),
            victim=scenario.owners[0].voiceprint,
        )
        testbed = scenario.env.testbed
        deployment = scenario.env.deployment
        self._legit_points = testbed.legitimate_points(deployment)
        all_points = sorted(testbed.plan.points.keys())
        self._away_points = [
            n for n in all_points
            if n not in self._legit_points and not self._in_stair_zone(n)
        ]
        if not self._legit_points or not self._away_points:
            raise WorkloadError("testbed lacks legitimate or away points")

    def _in_stair_zone(self, number: int) -> bool:
        """People pause on stairs, they don't loiter there; keeping
        dwell points off the staircase also keeps the motion sensor
        quiet between genuine traversals."""
        room = self.scenario.env.testbed.plan.point(number).room_name
        return room in ("stairwell", "landing")

    # -- movement helpers ------------------------------------------------------
    def _point(self, number: int) -> Point:
        # Measurement points are at device height; people stand on floors.
        return self.scenario.env.testbed.device_point(number).offset(dz=-1.0)

    def _floor_of_point(self, number: int) -> int:
        return self.scenario.env.testbed.plan.floor_of(
            self.scenario.env.testbed.device_point(number)
        )

    def _move_owner(self, owner: Person, number: int) -> float:
        """Relocate an owner; returns the settling time needed.

        Cross-floor moves walk the stair route so the motion sensor and
        floor tracker observe them, exactly as a real resident would.
        """
        env = self.scenario.env
        current_floor = env.testbed.plan.floor_of(owner.position)
        target_floor = self._floor_of_point(number)
        routes = env.testbed.routes
        if target_floor != current_floor and "up" in routes:
            route = routes["up"] if target_floor > current_floor else routes["down"]
            owner.follow(route)
            # Linger at the stair exit until the 8-second floor trace
            # completes, then continue to the destination.
            end_point = self._point(number)
            env.sim.schedule(self.POST_STAIR_PAUSE, owner.teleport, end_point)
            return self.POST_STAIR_PAUSE + 2.0
        owner.teleport(self._point(number))
        return 1.0

    # -- episode execution ------------------------------------------------------
    def run(
        self,
        legit_count: int,
        malicious_count: int,
        settle_after: float = 40.0,
    ) -> WorkloadResult:
        """Interleave ``legit_count`` owner commands and
        ``malicious_count`` replay attacks; advances the simulator."""
        scenario = self.scenario
        env = scenario.env
        result = WorkloadResult()
        flags = [False] * legit_count + [True] * malicious_count
        self.rng.shuffle(flags)

        for index, malicious in enumerate(flags):
            env.sim.run_for(float(self.rng.uniform(*self.episode_gap)))
            command = scenario.corpus.sample(self.rng)
            duration = full_utterance_duration(command, self.rng)
            if malicious:
                points = self._place_owners_away()
                settle = max(points.values()) if points else 1.0
                env.sim.run_for(settle)
                attack_spot = int(self.rng.choice(self._legit_points))
                launch = self.attack.launch(
                    command.text, duration, self._point(attack_spot).offset(dz=1.2)
                )
                if launch.heard_by_speaker:
                    result.malicious_issued += 1
                else:
                    result.skipped_unheard += 1
                issuer = "attacker"
                owner_points = list(points.keys())
            else:
                speaker_owner = scenario.owners[int(self.rng.integers(0, len(scenario.owners)))]
                spot = int(self.rng.choice(self._legit_points))
                settle = self._move_owner(speaker_owner, spot)
                # Other owners wander anywhere.
                for other in scenario.owners:
                    if other is not speaker_owner:
                        anywhere = int(self.rng.choice(self._legit_points + self._away_points))
                        settle = max(settle, self._move_owner(other, anywhere))
                env.sim.run_for(settle)
                utterance = speaker_owner.speak(command.text, duration)
                if env.play_utterance(utterance, speaker_owner.device_position()):
                    result.legit_issued += 1
                else:
                    result.skipped_unheard += 1
                issuer = speaker_owner.name
                owner_points = [spot]
            result.episodes.append(EpisodePlan(
                index=index,
                malicious=malicious,
                command_text=command.text,
                issuer=issuer,
                owner_points=owner_points,
            ))
            # Let the interaction finish (decision + response playback).
            env.sim.run_for(duration + 18.0)

        env.sim.run_for(settle_after)
        return result

    def _place_owners_away(self) -> dict:
        """Move every owner out of the speaker's room; returns settle
        times keyed by point number."""
        settle_times = {}
        for owner in self.scenario.owners:
            away = int(self.rng.choice(self._away_points))
            settle_times[away] = self._move_owner(owner, away)
        return settle_times
