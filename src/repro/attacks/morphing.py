"""Traffic-shaping adversaries that morph a speaker's flow shape.

The paper's recognizer fingerprints a speaker's *traffic* (record
lengths and timing), not its audio.  A network-level adversary — a
compromised router, a malicious VPN hop, or the speaker vendor itself —
can reshape that fingerprint without touching a single payload byte:

* pad TLS records up to a fixed cell size (``pad-fixed``),
* pad each record by a random amount (``pad-random``),
* perturb inter-record gaps (``jitter``),
* inject bursts of dummy records the cloud will ignore (``dummy-burst``).

Two deployment surfaces share one morpher implementation:

**Offline** (training / evaluation): :meth:`TrafficMorpher.morph_window`
rewrites a whole window of ``(offset, length)`` records.  This is what
:func:`repro.core.recognizers.morph_sample` applies to training corpora
for adversarial retraining, and what the robustness experiment applies
to evaluation windows.

**Online** (live tap): :class:`MorphingAdversary` installs itself as a
record shim on the guard's proxy (:meth:`TransparentProxy.
install_record_shim`) and presents *phantom* packets — same flow, same
metadata, morphed ``payload_len`` — to the guard's record policy.  The
real records keep their true lengths on the wire, so the cloud-side
semantics (and every other consumer of the flow) are untouched; only
the guard's observation is reshaped.  Timing morphers cannot run here
(a shim cannot bend the simulator clock), so they set ``online=False``
and only act offline.

Every morpher draws from a generator the *adversary* owns — never from
the guard's :class:`~repro.sim.random.RngHub` streams — so installing
one cannot perturb the guard's own randomness.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.registry import PluginRegistry
from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.net.proxy import ForwarderDecision, ProxiedFlow, TransparentProxy

# A window of observed records as (offset_seconds, payload_len) pairs,
# offsets non-decreasing from the window's first record.
Record = Tuple[float, int]


class TrafficMorpher:
    """Base morpher: the identity transform.

    Subclasses override :meth:`shape_record` (per-record, used by both
    surfaces) and/or :meth:`morph_window` (whole-window, offline only).
    The contract every morpher must keep — pinned by property tests:

    * the morphed window has at least as many records as the input, and
      the original records keep their relative order;
    * morphed offsets are non-decreasing (sim-clock monotonicity);
    * *padding* morphers never shrink a record.
    """

    name = "identity"
    #: Whether the morpher can run as a live proxy shim.  Timing
    #: morphers cannot (the shim observes records at true sim time).
    online = True

    def shape_record(self, length: int,
                     rng: np.random.Generator) -> Tuple[int, List[int]]:
        """Morph one record: ``(observed_length, trailing_dummy_lengths)``."""
        return length, []

    def morph_window(self, records: Sequence[Record],
                     rng: np.random.Generator) -> List[Record]:
        """Morph a whole window of ``(offset, length)`` records.

        The default applies :meth:`shape_record` to each record in
        order; injected dummies inherit the parent record's offset,
        which keeps offsets non-decreasing.
        """
        morphed: List[Record] = []
        for offset, length in records:
            observed, extras = self.shape_record(length, rng)
            morphed.append((offset, observed))
            for extra in extras:
                morphed.append((offset, extra))
        return morphed


class PadToFixedMorpher(TrafficMorpher):
    """Pad every record up to a fixed cell size (Tor-style cells).

    The strongest shape eraser: every marker byte-length the signature
    matcher keys on (phase markers, the 77→33 response pair, the
    command first-packet band) collapses onto one constant.
    """

    name = "pad-fixed"

    def __init__(self, cell: int = 1460) -> None:
        if cell < 1:
            raise ConfigError(f"pad cell must be positive, got {cell!r}")
        self.cell = cell

    def shape_record(self, length: int,
                     rng: np.random.Generator) -> Tuple[int, List[int]]:
        return max(length, self.cell), []


class RandomPadMorpher(TrafficMorpher):
    """Pad each record by a uniform random amount in ``[1, max_pad]``.

    Cheaper than fixed cells (less overhead) but noisier: lengths keep
    a blurred version of their original ordering.  The minimum pad of 1
    guarantees the morph is never the identity, so exact-length
    signatures always miss.
    """

    name = "pad-random"

    def __init__(self, max_pad: int = 600) -> None:
        if max_pad < 1:
            raise ConfigError(f"max_pad must be positive, got {max_pad!r}")
        self.max_pad = max_pad

    def shape_record(self, length: int,
                     rng: np.random.Generator) -> Tuple[int, List[int]]:
        return length + int(rng.integers(1, self.max_pad + 1)), []


class TimingJitterMorpher(TrafficMorpher):
    """Stretch inter-record gaps by random non-negative jitter.

    Lengths are untouched; only the rhythm changes.  Gaps never shrink,
    so offsets stay non-decreasing and record order is preserved.  A
    live shim cannot delay the guard's observations (records are tapped
    at true sim time), so this morpher is offline-only.
    """

    name = "jitter"
    online = False

    def __init__(self, max_jitter: float = 0.4) -> None:
        if max_jitter <= 0:
            raise ConfigError(f"max_jitter must be positive, got {max_jitter!r}")
        self.max_jitter = max_jitter

    def morph_window(self, records: Sequence[Record],
                     rng: np.random.Generator) -> List[Record]:
        morphed: List[Record] = []
        shift = 0.0
        previous: Optional[float] = None
        for offset, length in records:
            if previous is not None and offset > previous:
                shift += float(rng.uniform(0.0, self.max_jitter))
            previous = offset
            morphed.append((offset + shift, length))
        return morphed


class DummyBurstMorpher(TrafficMorpher):
    """Inject short bursts of dummy records after real ones.

    Dummy lengths come from a pool chosen to dodge the signature
    alphabet (no phase markers, no 77/33, below the command band), so
    the damage is purely positional: real markers get pushed out of the
    prefix positions the matcher inspects.  The cloud ignores the
    dummies (they are observations only at the guard's tap).
    """

    name = "dummy-burst"

    #: Dummy record lengths: none collide with the Echo phase markers
    #: (138/75), the response pair (77→33), or the command first-packet
    #: band (250-650).
    POOL: Tuple[int, ...] = (97, 103, 149, 211)

    def __init__(self, burst: int = 2, probability: float = 0.8) -> None:
        if burst < 1:
            raise ConfigError(f"burst must be positive, got {burst!r}")
        if not 0.0 < probability <= 1.0:
            raise ConfigError(f"probability must be in (0, 1], got {probability!r}")
        self.burst = burst
        self.probability = probability

    def shape_record(self, length: int,
                     rng: np.random.Generator) -> Tuple[int, List[int]]:
        if float(rng.random()) >= self.probability:
            return length, []
        count = int(rng.integers(1, self.burst + 1))
        extras = [int(self.POOL[int(rng.integers(0, len(self.POOL)))])
                  for _ in range(count)]
        return length, extras


# ---------------------------------------------------------------------------
# Morpher registry
# ---------------------------------------------------------------------------

# Name → class, the same shape as repro.core.recognizers.RECOGNIZERS;
# experiments, configs (``recognizer_train_morph``) and the CLI select
# morphers by these names.
MORPHERS = PluginRegistry("traffic morpher")
MORPHERS.register("pad-fixed", PadToFixedMorpher)
MORPHERS.register("pad-random", RandomPadMorpher)
MORPHERS.register("jitter", TimingJitterMorpher)
MORPHERS.register("dummy-burst", DummyBurstMorpher)


def create_morpher(name: str) -> TrafficMorpher:
    """Instantiate a registered morpher with its default knobs."""
    return MORPHERS.create(name)


# ---------------------------------------------------------------------------
# Live adversary (proxy record shim)
# ---------------------------------------------------------------------------


def _phantom(packet: Packet, payload_len: int) -> Packet:
    """A copy of ``packet`` with a morphed length (observation only)."""
    return Packet(
        packet.src,
        packet.dst,
        packet.protocol,
        payload_len=payload_len,
        flags=packet.flags,
        seq=packet.seq,
        ack=packet.ack,
        tls_type=packet.tls_type,
        tls_record_seq=packet.tls_record_seq,
        meta=dict(packet.meta),
        send_time=packet.send_time,
    )


class MorphingAdversary:
    """An on-path traffic shaper installed at the guard's tap.

    Wraps an *online* :class:`TrafficMorpher` as a proxy record shim:
    for each tapped client record it presents a phantom packet with the
    morphed length to the rest of the policy chain and relays the
    chain's decision for the real record.  Injected dummy records are
    fed through the chain as pure observations (their decisions are
    discarded — nothing real is held or dropped for them).

    The adversary owns its generator (``np.random.default_rng(seed)``);
    it never touches the guard's named streams, so installing one
    leaves every guard-side draw byte-identical.
    """

    def __init__(self, morpher: TrafficMorpher, seed: int,
                 speaker_ips: Optional[Sequence] = None) -> None:
        if not morpher.online:
            raise ConfigError(
                f"morpher {morpher.name!r} is offline-only and cannot "
                "run as a live shim")
        self.morpher = morpher
        self.rng = np.random.default_rng(seed)
        self.speaker_ips: Optional[Set] = (
            set(speaker_ips) if speaker_ips is not None else None)
        self.records_shaped = 0
        self.phantoms_injected = 0

    def install(self, proxy: TransparentProxy) -> None:
        """Interpose on ``proxy``'s record-policy chain."""
        proxy.install_record_shim(self.shim)

    def shim(self, flow: ProxiedFlow, packet: Packet,
             forward: Callable[[ProxiedFlow, Packet], ForwarderDecision],
             ) -> ForwarderDecision:
        """The record shim: morph, observe, relay the decision."""
        if self.speaker_ips is not None and flow.client.ip not in self.speaker_ips:
            return forward(flow, packet)
        observed, extras = self.morpher.shape_record(packet.payload_len, self.rng)
        if observed == packet.payload_len:
            decision = forward(flow, packet)
        else:
            decision = forward(flow, _phantom(packet, observed))
        self.records_shaped += 1
        for extra in extras:
            forward(flow, _phantom(packet, extra))
            self.phantoms_injected += 1
        return decision
