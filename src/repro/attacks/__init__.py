"""Attacker models (paper Sections II-B and III-B).

Each attacker produces :class:`~repro.audio.voiceprint.VoiceUtterance`
objects and plays them into the environment from some position.  The
attacks differ in how they defeat *audio-domain* defenses — replayed
recordings and cloned voices pass voice-match, inaudible and laser
injections bypass the microphone's human-audibility assumption, remote
playback needs no physical presence — but none of them can put the
owner's phone next to the speaker, which is the invariant VoiceGuard
checks.

:mod:`repro.attacks.morphing` models a different adversary class: an
on-path *traffic shaper* that attacks the guard's recognizer (not its
decision module) by reshaping the flow shape it fingerprints.
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.inaudible import InaudibleAttack, LaserAttack
from repro.attacks.morphing import (
    MORPHERS,
    DummyBurstMorpher,
    MorphingAdversary,
    PadToFixedMorpher,
    RandomPadMorpher,
    TimingJitterMorpher,
    TrafficMorpher,
    create_morpher,
)
from repro.attacks.remote import CompromisedPlaybackAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import SynthesisAttack

__all__ = [
    "Attack",
    "AttackResult",
    "CompromisedPlaybackAttack",
    "DummyBurstMorpher",
    "InaudibleAttack",
    "LaserAttack",
    "MORPHERS",
    "MorphingAdversary",
    "PadToFixedMorpher",
    "RandomPadMorpher",
    "ReplayAttack",
    "SynthesisAttack",
    "TimingJitterMorpher",
    "TrafficMorpher",
    "create_morpher",
]
