"""Attack interface."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.voiceprint import VoiceUtterance
from repro.home.environment import HomeEnvironment
from repro.radio.geometry import Point


@dataclass
class AttackResult:
    """What happened when an attack was launched."""

    utterance: VoiceUtterance
    launched_at: float
    heard_by_speaker: bool


class Attack:
    """Base class: an attacker who can produce and play attack audio."""

    name = "attack"

    def __init__(self, env: HomeEnvironment, rng: np.random.Generator) -> None:
        self.env = env
        self.rng = rng
        self.results: list = []

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Produce the attack utterance for ``text``."""
        raise NotImplementedError

    def launch(self, text: str, duration: float, position: Point) -> AttackResult:
        """Play the attack audio at ``position`` right now."""
        utterance = self.craft(text, duration)
        heard = self.env.play_utterance(utterance, position)
        result = AttackResult(
            utterance=utterance,
            launched_at=self.env.sim.now,
            heard_by_speaker=heard,
        )
        self.results.append(result)
        return result
