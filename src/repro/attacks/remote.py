"""Remote attacks via compromised playback devices.

A compromised smart TV (or a malicious ad in a media stream) plays an
attack payload through its loudspeakers — the attacker never enters the
home (Section III-B's remote attacker).  The payload is typically a
synthesized or replayed owner's voice, so speaker-side defenses pass.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.audio.voiceprint import (
    UtteranceSource,
    VoicePrint,
    VoiceUtterance,
    synthesized_as,
)
from repro.home.environment import HomeEnvironment
from repro.radio.geometry import Point


class CompromisedPlaybackAttack(Attack):
    """A compromised playback device at a fixed position in the home."""

    name = "remote_playback"

    def __init__(
        self,
        env: HomeEnvironment,
        rng: np.random.Generator,
        victim: VoicePrint,
        device_position: Point,
        device_name: str = "smart-tv",
    ) -> None:
        super().__init__(env, rng)
        self.victim = victim
        self.device_position = device_position
        self.device_name = device_name

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Synthesize the payload in the victim's voice."""
        utterance = synthesized_as(self.victim, text, duration, self.rng)
        return VoiceUtterance(
            text=utterance.text,
            word_count=utterance.word_count,
            duration=utterance.duration,
            embedding=utterance.embedding,
            source=UtteranceSource.REMOTE_PLAYBACK,
            speaker_label=utterance.speaker_label,
        )

    def launch_from_device(self, text: str, duration: float) -> AttackResult:
        """Play the payload from the compromised device's position."""
        return self.launch(text, duration, self.device_position)

    def schedule_campaign(self, texts: list, duration_for, interval: float) -> None:
        """Queue a series of payloads (large-scale media-embedded
        attacks): one launch every ``interval`` seconds."""
        for index, text in enumerate(texts):
            self.env.sim.schedule(
                interval * (index + 1),
                lambda t=text: self.launch_from_device(t, duration_for(t)),
            )
