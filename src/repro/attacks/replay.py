"""Replay attack: play back a recording of the owner's voice.

The attacker records owner commands (scam calls, published clips,
in-person spying — Section III-B) and replays them through a portable
loudspeaker.  Voice-match accepts the audio because the embedding *is*
the owner's.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import Attack
from repro.audio.voiceprint import VoicePrint, VoiceUtterance, live_utterance, replay_of
from repro.errors import WorkloadError
from repro.home.environment import HomeEnvironment


class ReplayAttack(Attack):
    """Replays captured owner utterances."""

    name = "replay"

    def __init__(
        self,
        env: HomeEnvironment,
        rng: np.random.Generator,
        victim: VoicePrint,
    ) -> None:
        super().__init__(env, rng)
        self.victim = victim
        self._recordings: List[VoiceUtterance] = []

    def record_sample(self, text: str, duration: float) -> VoiceUtterance:
        """Capture one live owner utterance for later replay."""
        sample = live_utterance(text, duration, self.victim, self.rng)
        self._recordings.append(sample)
        return sample

    def capture(self, utterance: VoiceUtterance) -> None:
        """Add an overheard utterance to the attacker's library."""
        self._recordings.append(utterance)

    @property
    def library_size(self) -> int:
        """Number of captured recordings available for replay."""
        return len(self._recordings)

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Replay a recording of ``text`` (recording it first if the
        attacker's library lacks it — pre-recorded per the threat model)."""
        for recording in self._recordings:
            if recording.text == text:
                return replay_of(recording, self.rng)
        if self.victim is None:
            raise WorkloadError("replay attacker has no recording and no victim access")
        return replay_of(self.record_sample(text, duration), self.rng)
