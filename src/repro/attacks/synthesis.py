"""Voice-synthesis (cloning) attack.

With a handful of the victim's samples, the attacker trains a TTS
model that speaks *arbitrary* commands in the victim's voice — the
attack that defeats voice-match even for commands the owner never
spoke (Sections I and III-B, citing De Leon et al.).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.audio.voiceprint import VoicePrint, VoiceUtterance, synthesized_as
from repro.home.environment import HomeEnvironment


class SynthesisAttack(Attack):
    """Synthesizes arbitrary commands in the victim's voice."""

    name = "synthesis"

    def __init__(
        self,
        env: HomeEnvironment,
        rng: np.random.Generator,
        victim: VoicePrint,
        samples_collected: int = 5,
    ) -> None:
        super().__init__(env, rng)
        self.victim = victim
        # More collected samples means a tighter clone; the effect is
        # modelled as already folded into the synthesis artifact noise.
        self.samples_collected = samples_collected

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Clone the victim's voice saying ``text``."""
        return synthesized_as(self.victim, text, duration, self.rng)
