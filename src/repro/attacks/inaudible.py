"""Inaudible (ultrasound) and laser injection attacks.

DolphinAttack-style attacks modulate a (cloned) voice command onto an
ultrasonic carrier that microphones demodulate through their
non-linearity; Light-Commands drives the MEMS microphone with an
amplitude-modulated laser.  Humans hear nothing, so the usual "the
owner would notice" argument fails — but the injected command still
produces speaker traffic, which is all VoiceGuard needs (Section IV-B
explains why the guard keys on traffic, not on the microphone).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.audio.voiceprint import (
    UtteranceSource,
    VoicePrint,
    VoiceUtterance,
    synthesized_as,
)
from repro.home.environment import HomeEnvironment


class InaudibleAttack(Attack):
    """Ultrasonic-carrier injection of a cloned voice command.

    Needs a dedicated ultrasonic speaker within a few metres of the
    target; the payload rides a synthesized copy of the victim's voice
    so that voice-match (which only sees the demodulated audio) passes.
    """

    name = "inaudible"
    MAX_RANGE = 3.0  # ultrasonic attacks are short-range

    def __init__(
        self,
        env: HomeEnvironment,
        rng: np.random.Generator,
        victim: VoicePrint,
    ) -> None:
        super().__init__(env, rng)
        self.victim = victim

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Synthesize the victim's voice on an ultrasonic carrier."""
        utterance = synthesized_as(self.victim, text, duration, self.rng)
        return VoiceUtterance(
            text=utterance.text,
            word_count=utterance.word_count,
            duration=utterance.duration,
            embedding=utterance.embedding,
            source=UtteranceSource.INAUDIBLE,
            speaker_label=utterance.speaker_label,
        )


class LaserAttack(Attack):
    """Light-commands injection through a window.

    The laser actuates the microphone directly; there is no acoustic
    audio at all (the embedding carries the modulated payload).  The
    paper cites this attack as a reason to avoid keyword-recognition
    sensors in the defense: the guard must observe traffic instead.
    """

    name = "laser"

    def __init__(
        self,
        env: HomeEnvironment,
        rng: np.random.Generator,
        victim: VoicePrint,
    ) -> None:
        super().__init__(env, rng)
        self.victim = victim

    def craft(self, text: str, duration: float) -> VoiceUtterance:
        """Modulate a cloned command onto the laser payload."""
        utterance = synthesized_as(self.victim, text, duration, self.rng)
        return VoiceUtterance(
            text=utterance.text,
            word_count=utterance.word_count,
            duration=utterance.duration,
            embedding=utterance.embedding,
            source=UtteranceSource.LASER,
            speaker_label=utterance.speaker_label,
        )

    def launch_through_window(self, text: str, duration: float):
        """Fire at the speaker from outside: position is the speaker's
        own location (the laser lands directly on the device)."""
        return self.launch(text, duration, self.env.speaker_beacon.position)
