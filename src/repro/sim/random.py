"""Named, seeded random streams.

Every stochastic component in the reproduction (propagation shadowing,
packet-length variation, push-notification latency, human mobility,
workload arrival times, ...) pulls from its own named stream derived
from a single experiment seed.  This keeps experiments reproducible and
— just as important — keeps subsystems statistically independent: adding
a draw to one component does not perturb any other component's sequence.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngHub:
    """Factory of independent ``numpy.random.Generator`` streams.

    Streams are keyed by name; the same ``(seed, name)`` pair always
    yields the same sequence.  Repeated calls with the same name return
    the *same generator object*, so state advances across call sites.

    Example
    -------
    >>> hub = RngHub(seed=7)
    >>> a = hub.stream("radio.shadowing")
    >>> b = hub.stream("radio.shadowing")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The hub's root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = generator
        return generator

    def reseed(self, seed: int) -> None:
        """Re-key the hub in place: every already-created stream jumps to
        the state a fresh hub with ``seed`` would have created it in, and
        streams created afterwards derive from the new seed.

        The two cases are indistinguishable by construction — a stream's
        post-reseed state equals its would-be-fresh state — so *which*
        streams happen to exist at reseed time is unobservable.  That is
        the property the scenario pool leans on: a memo-warm world build
        (which skips calibration/training draws and never creates their
        streams) and a memo-cold build land in identical RNG states after
        :func:`repro.experiments.pool.rehome` reseeds the hub per home.

        Existing generator *objects* keep their identity (components hold
        references to them); only their internal state is replaced.
        """
        self._seed = int(seed)
        for name, generator in self._streams.items():
            fresh = np.random.default_rng(self._derive_seed(name))
            generator.bit_generator.state = fresh.bit_generator.state

    def fork(self, name: str) -> "RngHub":
        """A child hub whose streams are independent of this hub's.

        Used to give each of many repeated trials (e.g. each of the
        7 simulated days in Tables II-IV) its own deterministic world.
        """
        return RngHub(self._derive_seed(f"fork:{name}"))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")


def bounded_lognormal(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """Draw from a lognormal with target *arithmetic* mean, clipped to
    ``[low, high]``.

    Latency-like quantities (FCM delivery, BLE scan completion) are
    right-skewed with a hard floor; the paper's Figure 7 histogram has
    exactly this shape.  ``sigma`` is the shape parameter of the
    underlying normal; ``mu`` is solved so the distribution mean equals
    ``mean`` before clipping.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    if low > high:
        raise ValueError(f"low {low!r} exceeds high {high!r}")
    mu = np.log(mean) - 0.5 * sigma * sigma
    value = float(rng.lognormal(mean=mu, sigma=sigma))
    return float(min(max(value, low), high))
