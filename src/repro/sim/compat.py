"""Pre-PR kernel compatibility switch.

The sim-kernel optimization PR keeps the old (pre-optimization) kernel
behaviours runnable so ``benchmarks/bench_sim_kernel.py`` can measure
the speedup *inside one interpreter* and — more importantly — assert
that both kernels produce byte-identical guard event streams before any
timing is trusted.

Legacy mode selects:

* :class:`repro.sim.events.LegacyEventQueue` (per-event ``__lt__``
  heap, no compaction, no handle-free fast path),
* the cancel+re-push TCP retransmission timer
  (:class:`repro.net.tcp.TcpConnection`),
* ungated motion-sensor polling
  (:class:`repro.home.devices.MotionSensor`).

The flag is read at *construction* time by each component, so flip it
before building a scenario, not mid-run.  Production code never touches
this module; only benchmarks and regression tests do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_legacy_kernel = False


def use_legacy_kernel(enabled: bool) -> None:
    """Globally select the pre-PR kernel for newly built components."""
    global _legacy_kernel
    _legacy_kernel = bool(enabled)


def legacy_kernel_enabled() -> bool:
    """Whether newly built components should use the pre-PR kernel."""
    return _legacy_kernel


@contextmanager
def legacy_kernel() -> Iterator[None]:
    """Context manager: build everything inside with the pre-PR kernel."""
    previous = _legacy_kernel
    use_legacy_kernel(True)
    try:
        yield
    finally:
        use_legacy_kernel(previous)
