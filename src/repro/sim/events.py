"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing tie-breaker, so two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped.

The queue keeps an incremental count of live (scheduled, uncancelled)
events, so ``len(queue)`` — and therefore
:attr:`repro.sim.simulator.Simulator.pending_events` — is O(1) instead
of a scan of the whole heap.  :class:`Event` uses ``__slots__`` and a
bare ``(time, sequence)`` comparison, which keeps heap pushes and pops
cheap on the dispatch hot path.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[..., None]


class Event:
    """A scheduled callback.

    Ordering uses only ``time`` and ``sequence``; the payload fields
    never participate in comparisons.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "_in_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callback,
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._in_queue = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(time={self.time!r}, sequence={self.sequence}, {state})"

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """Opaque handle returned by scheduling calls; supports cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: Optional["EventQueue"] = None) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled(event)


class EventQueue:
    """A heap of pending :class:`Event` objects with an O(1) live count."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not callable(callback):
            raise SimulationError(f"event callback must be callable, got {callback!r}")
        event = Event(time=float(time), sequence=next(self._counter), callback=callback, args=args)
        event._in_queue = True
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event._in_queue = False
        self._live -= 1
        return event

    def _note_cancelled(self, event: Event) -> None:
        """Keep the live count exact when a queued event is cancelled.

        Cancelling an event that already fired (or was popped) must not
        decrement: it was accounted for when it left the heap.
        """
        if event._in_queue:
            self._live -= 1

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._in_queue = False
