"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing tie-breaker, so two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[..., None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Sorting uses only ``time`` and ``sequence``; the payload fields are
    excluded from comparison.
    """

    time: float
    sequence: int
    callback: Callback = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """Opaque handle returned by scheduling calls; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class EventQueue:
    """A heap of pending :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not callable(callback):
            raise SimulationError(f"event callback must be callable, got {callback!r}")
        event = Event(time=float(time), sequence=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
