"""Event queue for the discrete-event kernel.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a
monotonically increasing tie-breaker, so two events scheduled for the
same instant fire in the order they were scheduled.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped.

:class:`EventQueue` is the optimized kernel.  Heap entries are plain
tuples, so ordering is resolved by C-level tuple comparison instead of
a Python ``__lt__`` per heap hop, and two entry shapes coexist:

``(time, seq, event)``
    a cancellable entry carrying an :class:`Event` (returned as an
    :class:`EventHandle` from :meth:`push`);
``(time, seq, None, callback, args)``
    a handle-free entry from :meth:`post` for the fire-and-forget
    majority (packet deliveries, scheduled sends), which skips both the
    ``Event`` and the ``EventHandle`` allocation.

The sequence field is unique, so comparisons never reach the third
element and the two shapes can share one heap.

Dead entries no longer accumulate: when cancelled entries outnumber
live ones the queue *compacts*, rebuilding the heap without them — so a
timer-churn workload (cancel + re-push per packet) keeps
``len(queue._heap)`` within a small constant factor of ``len(queue)``
instead of stranding one dead event per packet (the pre-PR leak).

The queue keeps an incremental count of live (scheduled, uncancelled)
events, so ``len(queue)`` — and therefore
:attr:`repro.sim.simulator.Simulator.pending_events` — is O(1) instead
of a scan of the whole heap.

:class:`LegacyEventQueue` preserves the pre-PR implementation verbatim
(``Event``-object heap, no compaction) as the benchmark baseline; see
:mod:`repro.sim.compat`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[..., None]

# Compaction only kicks in once this many dead entries accumulated, so
# tiny queues never pay a rebuild for a handful of cancels.
_COMPACT_MIN_DEAD = 8


class Event:
    """A scheduled callback.

    Ordering uses only ``time`` and ``sequence``; the payload fields
    never participate in comparisons.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "_in_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callback,
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._in_queue = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(time={self.time!r}, sequence={self.sequence}, {state})"

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """Opaque handle returned by scheduling calls; supports cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue=None) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled(event)


class EventQueue:
    """A tuple-entry heap of pending events with an O(1) live count."""

    __slots__ = ("_heap", "_next_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: list = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    # -- scheduling -----------------------------------------------------
    def push(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Returns a cancellable :class:`EventHandle`.
        """
        if not callable(callback):
            raise SimulationError(f"event callback must be callable, got {callback!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time=float(time), sequence=seq, callback=callback, args=args)
        event._in_queue = True
        heapq.heappush(self._heap, (event.time, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def post(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> None:
        """Schedule ``callback(*args)`` with no handle (not cancellable).

        The fire-and-forget fast path: one tuple on the heap, no
        :class:`Event`, no :class:`EventHandle`.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (float(time), seq, None, callback, args))
        self._live += 1

    # -- inspection -----------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event is None or not event.cancelled:
                return head[0]
            heapq.heappop(heap)
            event._in_queue = False
            self._dead -= 1
        return None

    # -- dispatch -------------------------------------------------------
    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty.

        Handle-free entries are wrapped in a transient :class:`Event`
        so callers see one uniform type.
        """
        heap = self._heap
        while heap:
            head = heapq.heappop(heap)
            event = head[2]
            if event is None:
                self._live -= 1
                return Event(head[0], head[1], head[3], head[4])
            if event.cancelled:
                event._in_queue = False
                self._dead -= 1
                continue
            event._in_queue = False
            self._live -= 1
            return event
        return None

    def pop_entry(self) -> Optional[Tuple[float, Callback, Tuple[Any, ...]]]:
        """Pop the next live entry as ``(time, callback, args)``."""
        heap = self._heap
        while heap:
            head = heapq.heappop(heap)
            event = head[2]
            if event is None:
                self._live -= 1
                return (head[0], head[3], head[4])
            if event.cancelled:
                event._in_queue = False
                self._dead -= 1
                continue
            event._in_queue = False
            self._live -= 1
            return (head[0], event.callback, event.args)
        return None

    def pop_entry_before(
        self, limit: float
    ) -> Optional[Tuple[float, Callback, Tuple[Any, ...]]]:
        """Pop the next live entry at or before ``limit``, else ``None``."""
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                event._in_queue = False
                self._dead -= 1
                continue
            if head[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            if event is None:
                return (head[0], head[3], head[4])
            event._in_queue = False
            return (head[0], event.callback, event.args)
        return None

    # -- cancellation bookkeeping --------------------------------------
    def _note_cancelled(self, event: Event) -> None:
        """Keep the live count exact when a queued event is cancelled.

        Cancelling an event that already fired (or was popped, or was
        removed by a compaction) must not decrement: it was accounted
        for when it left the heap.
        """
        if event._in_queue:
            self._live -= 1
            self._dead += 1
            if self._dead > self._live and self._dead >= _COMPACT_MIN_DEAD:
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead entries.

        Triggered when dead entries outnumber live ones, so the rebuild
        removes at least half the heap and the amortized cost per
        cancellation stays O(log n).  Removed events are marked as out
        of the queue, keeping :meth:`_note_cancelled` exact even if the
        same handle is cancelled again after the compaction.
        """
        kept = []
        for entry in self._heap:
            event = entry[2]
            if event is not None and event.cancelled:
                event._in_queue = False
            else:
                kept.append(entry)
        self._heap = kept
        heapq.heapify(kept)
        self._dead = 0


class LegacyEventQueue:
    """The pre-PR queue, kept verbatim as the benchmark baseline.

    A heap of :class:`Event` objects compared via Python ``__lt__``;
    cancellation is lazy with *no* compaction, so a cancel + re-push
    timer pattern strands one dead event per cycle (the timer-churn
    leak this PR's optimized queue fixes).
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not callable(callback):
            raise SimulationError(f"event callback must be callable, got {callback!r}")
        event = Event(time=float(time), sequence=next(self._counter), callback=callback, args=args)
        event._in_queue = True
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def post(self, time: float, callback: Callback, args: Tuple[Any, ...] = ()) -> None:
        """Legacy mode has no handle-free path; every post is a push."""
        self.push(time, callback, args)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event._in_queue = False
        self._live -= 1
        return event

    def pop_entry(self) -> Optional[Tuple[float, Callback, Tuple[Any, ...]]]:
        """Pop the next live entry as ``(time, callback, args)``."""
        event = self.pop()
        if event is None:
            return None
        return (event.time, event.callback, event.args)

    def pop_entry_before(
        self, limit: float
    ) -> Optional[Tuple[float, Callback, Tuple[Any, ...]]]:
        """Pop the next live entry at or before ``limit``, else ``None``.

        Mirrors the pre-PR run loop's cost profile: a peek (with head
        cleanup) followed by a pop.
        """
        next_time = self.peek_time()
        if next_time is None or next_time > limit:
            return None
        event = self.pop()
        return (event.time, event.callback, event.args)

    def _note_cancelled(self, event: Event) -> None:
        """Keep the live count exact when a queued event is cancelled.

        Cancelling an event that already fired (or was popped) must not
        decrement: it was accounted for when it left the heap.
        """
        if event._in_queue:
            self._live -= 1

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._in_queue = False
