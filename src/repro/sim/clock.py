"""Simulated wall clock.

The clock only moves forward, and only the event loop may advance it.
All timestamps in the reproduction are seconds since simulation start
(floats), mirroring the packet-capture timestamps used in the paper.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonic simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past; a
        simulation that tries to run backwards is always a bug.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now:.6f} to {time:.6f}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
