"""Discrete-event simulation kernel.

This package provides the time base every other subsystem runs on: a
monotonic simulated clock, a priority event queue, a :class:`Simulator`
facade with one-shot and periodic scheduling, and named, seeded random
number streams (:class:`RngHub`) so that every experiment in the
reproduction is deterministic for a given seed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventHandle, EventQueue
from repro.sim.process import PeriodicTask, Timer
from repro.sim.random import RngHub, bounded_lognormal
from repro.sim.simulator import Simulator

__all__ = [
    "Event",
    "EventHandle",
    "EventQueue",
    "PeriodicTask",
    "RngHub",
    "SimClock",
    "Simulator",
    "Timer",
    "bounded_lognormal",
]
