"""Higher-level scheduling helpers built on the simulator.

:class:`Timer` is a restartable one-shot timer, used for TCP
retransmission/keepalive deadlines and decision timeouts.
:class:`PeriodicTask` re-schedules itself at a fixed interval, used for
speaker heartbeats and RSSI sampling during trace recording.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator


class Timer:
    """A one-shot timer that can be restarted or cancelled.

    The callback fires once, ``interval`` seconds after the most recent
    :meth:`start` / :meth:`restart`.
    """

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]) -> None:
        if interval < 0:
            raise SimulationError(f"timer interval must be >= 0, got {interval!r}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def interval(self) -> float:
        """The configured one-shot interval."""
        return self._interval

    @property
    def running(self) -> bool:
        """Whether the timer is armed."""
        return self._handle is not None and not self._handle.cancelled

    def start(self) -> None:
        """Arm the timer; a no-op if it is already running."""
        if not self.running:
            self._handle = self._sim.schedule(self._interval, self._fire)

    def restart(self) -> None:
        """Re-arm the timer from now, cancelling any pending expiry."""
        self.cancel()
        self._handle = self._sim.schedule(self._interval, self._fire)

    def cancel(self) -> None:
        """Disarm the timer (idempotent)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """Runs ``callback(now)`` every ``period`` seconds until stopped.

    The first invocation happens ``first_delay`` seconds after
    :meth:`start` (defaulting to one full period).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[float], None],
        first_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period!r}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._first_delay = period if first_delay is None else float(first_delay)
        self._handle: Optional[EventHandle] = None
        self._stopped = True
        self.fire_count = 0

    @property
    def running(self) -> bool:
        """Whether the task is firing."""
        return not self._stopped

    def start(self) -> None:
        """Begin periodic firing; a no-op if already running."""
        if self._stopped:
            self._stopped = False
            self._handle = self._sim.schedule(self._first_delay, self._tick)

    def stop(self) -> None:
        """Stop firing.  Safe to call from inside the callback."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback(self._sim.now)
        if not self._stopped:
            self._handle = self._sim.schedule(self._period, self._tick)


def call_repeatedly(
    sim: Simulator,
    period: float,
    callback: Callable[[float], None],
    *,
    count: int,
    first_delay: float = 0.0,
) -> PeriodicTask:
    """Schedule ``callback`` exactly ``count`` times, ``period`` apart.

    Returns the underlying :class:`PeriodicTask` (already started).
    """
    if count <= 0:
        raise SimulationError(f"count must be positive, got {count!r}")
    task_ref: dict[str, Any] = {}

    def wrapped(now: float) -> None:
        callback(now)
        if task_ref["task"].fire_count >= count:
            task_ref["task"].stop()

    task = PeriodicTask(sim, period, wrapped, first_delay=first_delay)
    task_ref["task"] = task
    task.start()
    return task
