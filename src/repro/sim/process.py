"""Higher-level scheduling helpers built on the simulator.

:class:`Timer` is a restartable one-shot timer, used for TCP
retransmission/keepalive deadlines and decision timeouts.
:class:`PeriodicTask` re-schedules itself at a fixed interval, used for
speaker heartbeats and RSSI sampling during trace recording.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator


class Timer:
    """A one-shot timer that can be restarted or cancelled.

    The callback fires once, ``interval`` seconds after the most recent
    :meth:`start` / :meth:`restart`.
    """

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]) -> None:
        if interval < 0:
            raise SimulationError(f"timer interval must be >= 0, got {interval!r}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def interval(self) -> float:
        """The configured one-shot interval."""
        return self._interval

    @property
    def running(self) -> bool:
        """Whether the timer is armed."""
        return self._handle is not None and not self._handle.cancelled

    def start(self) -> None:
        """Arm the timer; a no-op if it is already running."""
        if not self.running:
            self._handle = self._sim.schedule(self._interval, self._fire)

    def restart(self) -> None:
        """Re-arm the timer from now, cancelling any pending expiry."""
        self.cancel()
        self._handle = self._sim.schedule(self._interval, self._fire)

    def cancel(self) -> None:
        """Disarm the timer (idempotent)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class DeadlineTimer:
    """A one-shot timer whose deadline can be *bumped* without touching
    the event heap.

    :meth:`Timer.restart` cancels and re-pushes a heap entry every
    time, which on a per-packet timer (TCP retransmission, keepalive)
    strands one dead event per packet — the timer-churn leak.  A
    :class:`DeadlineTimer` instead just stores the new deadline: when
    the already-queued event fires early it quietly re-arms itself for
    the remaining interval.  Pushing a new heap entry is only needed
    when the deadline moves *earlier* than the pending event, which
    per-packet timers (that only ever postpone) never do.

    The callback runs exactly once per scheduled deadline, at exactly
    the deadline, so observable behaviour matches a cancel + re-push
    timer; only the heap traffic differs.

    Wakeups ride the handle-free :meth:`Simulator.post_at` path: the
    timer never allocates an :class:`~repro.sim.events.Event` or an
    :class:`~repro.sim.events.EventHandle`, and cancellation never
    touches the heap.  ``_next_fire`` tracks the earliest outstanding
    wakeup; any wakeup that arrives while disarmed (or before a bumped
    deadline) is a cheap no-op.
    """

    __slots__ = ("_sim", "_callback", "_deadline", "_next_fire")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._deadline: Optional[float] = None
        self._next_fire: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether a deadline is pending."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """The pending expiry time, or ``None`` when disarmed."""
        return self._deadline

    def schedule_at(self, deadline: float) -> None:
        """Arm (or bump) the timer to expire at absolute ``deadline``."""
        self._deadline = deadline
        next_fire = self._next_fire
        if next_fire is None or next_fire > deadline:
            # No outstanding wakeup covers the new deadline; post one.
            # (A wakeup made redundant by an earlier one stays queued
            # and no-ops — cheaper than cancelling it out of the heap.)
            self._next_fire = deadline
            self._sim.post_at(deadline, self._fire)
        # Otherwise the pending (earlier) wakeup will fire and lazily
        # re-arm for the remainder — the zero-heap-traffic hot path.

    def schedule_in(self, delay: float) -> None:
        """Arm (or bump) the timer to expire ``delay`` seconds from now."""
        self.schedule_at(self._sim.now + delay)

    def cancel(self) -> None:
        """Disarm (idempotent).  The pending wakeup, if any, becomes a
        no-op instead of being cancelled out of the heap."""
        self._deadline = None

    def _fire(self) -> None:
        sim = self._sim
        now = sim._clock._now
        next_fire = self._next_fire
        if next_fire is not None and next_fire <= now:
            self._next_fire = None
        deadline = self._deadline
        if deadline is None:
            return
        if deadline > now:
            # Bumped since this wakeup was queued: re-arm for the rest.
            if self._next_fire is None:
                self._next_fire = deadline
                sim.post_at(deadline, self._fire)
            return
        self._deadline = None
        self._callback()


class PeriodicTask:
    """Runs ``callback(now)`` every ``period`` seconds until stopped.

    The first invocation happens ``first_delay`` seconds after
    :meth:`start` (defaulting to one full period).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[float], None],
        first_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period!r}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._first_delay = period if first_delay is None else float(first_delay)
        self._handle: Optional[EventHandle] = None
        self._stopped = True
        self.fire_count = 0

    @property
    def running(self) -> bool:
        """Whether the task is firing."""
        return not self._stopped

    def start(self) -> None:
        """Begin periodic firing; a no-op if already running."""
        if self._stopped:
            self._stopped = False
            self._handle = self._sim.schedule(self._first_delay, self._tick)

    def stop(self) -> None:
        """Stop firing.  Safe to call from inside the callback."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback(self._sim.now)
        if not self._stopped:
            self._handle = self._sim.schedule(self._period, self._tick)


def call_repeatedly(
    sim: Simulator,
    period: float,
    callback: Callable[[float], None],
    *,
    count: int,
    first_delay: float = 0.0,
) -> PeriodicTask:
    """Schedule ``callback`` exactly ``count`` times, ``period`` apart.

    Returns the underlying :class:`PeriodicTask` (already started).
    """
    if count <= 0:
        raise SimulationError(f"count must be positive, got {count!r}")
    task_ref: dict[str, Any] = {}

    def wrapped(now: float) -> None:
        callback(now)
        if task_ref["task"].fire_count >= count:
            task_ref["task"].stop()

    task = PeriodicTask(sim, period, wrapped, first_delay=first_delay)
    task_ref["task"] = task
    task.start()
    return task
