"""The simulator facade: clock + event queue + run loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim import compat
from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, EventQueue, LegacyEventQueue


class Simulator:
    """Drives a discrete-event simulation.

    Components hold a reference to the simulator and use
    :meth:`schedule` / :meth:`schedule_at` to arrange future work
    (:meth:`post` / :meth:`post_at` when no cancellation handle is
    needed).  The experiment driver then calls :meth:`run` (to drain
    all events) or :meth:`run_until` (to advance to a deadline).

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (2.5, ['hello'])
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = SimClock(start)
        if compat.legacy_kernel_enabled():
            self._queue = LegacyEventQueue()
        else:
            self._queue = EventQueue()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay!r} s in the past")
        return self._queue.push(self._clock._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._clock._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, which is before now ({self.now:.6f})"
            )
        return self._queue.push(time, callback, args)

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule` but fire-and-forget: no handle, not
        cancellable.  The cheap path for high-volume internal events
        (packet deliveries, scheduled sends)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay!r} s in the past")
        self._queue.post(self._clock._now + delay, callback, args)

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule_at` but fire-and-forget (no handle)."""
        if time < self._clock._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, which is before now ({self.now:.6f})"
            )
        self._queue.post(time, callback, args)

    def step(self) -> bool:
        """Fire the next event, advancing the clock.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        self._clock.advance_to(entry[0])
        entry[1](*entry[2])
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fired).

        Returns the number of events fired.  ``max_events`` guards
        against accidentally unbounded simulations (e.g. a periodic
        task that is never stopped).
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events scheduled at or before ``time``; then advance to it.

        The clock always ends exactly at ``time`` even if the queue is
        empty, so periodic measurements can rely on the deadline.
        """
        clock = self._clock
        if time < clock._now:
            raise SimulationError(
                f"run_until({time:.6f}) is before now ({self.now:.6f})"
            )
        pop_entry_before = self._queue.pop_entry_before
        fired = 0
        while max_events is None or fired < max_events:
            entry = pop_entry_before(time)
            if entry is None:
                break
            # The heap pops in time order and never yields past events,
            # so the monotonicity check in advance_to is redundant here.
            clock._now = entry[0]
            entry[1](*entry[2])
            fired += 1
        clock.advance_to(time)
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Convenience wrapper: :meth:`run_until` ``now + duration``."""
        return self.run_until(self._clock._now + duration, max_events=max_events)
