"""Deterministic fault plans and the injector that executes them.

VoiceGuard's verdict rides a fragile chain — FCM push, app wake, BLE
scan, LAN report (paper Figure 5, steps 4-7) — and the paper's
"practical" claim only holds if the guard degrades gracefully when
links of that chain fail.  :class:`FaultPlan` describes *what* can fail
(per-channel probabilities and scheduled device-offline windows);
:class:`FaultInjector` is the runtime oracle the substrate consults at
each hazard point.

Determinism: every channel rolls on its own SHA-256-derived stream, so
the same plan seed produces the same fault sequence run after run, and
enabling one channel never perturbs another.  Offline windows are pure
simulated-clock interval checks and consume no randomness at all.
With no plan (``plan=None`` or hooks left unwired) every query answers
"no fault" without touching an RNG, so fault-free runs are bit-for-bit
identical to builds that predate this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.simulator import Simulator

ANY_DEVICE = "*"

_PROBABILITY_FIELDS = (
    "push_loss",
    "report_loss",
    "scan_failure",
    "sensor_dropout",
    "trace_dropout",
)


@dataclass(frozen=True)
class OfflineWindow:
    """A scheduled interval during which a device is unreachable.

    ``device`` is a device name, or :data:`ANY_DEVICE` to take every
    registered device down at once (a home-wide outage).
    """

    device: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(
                f"offline window for {self.device!r} ends at {self.end!r}, "
                f"not after its start {self.start!r}"
            )

    def covers(self, device: str, time: float) -> bool:
        """Whether ``device`` is offline at simulated ``time``."""
        if self.device not in (ANY_DEVICE, device):
            return False
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """Per-channel fault model for one run; picklable and hashable.

    Probabilities are per *operation*: one push, one device-to-guard
    report, one BLE scan window, one stair traversal, one triggered
    trace.  ``push_extra_delay`` is the mean of an exponential delay
    added on top of the normal cloud-path latency (congestion /
    throttling), applied to pushes that survive the loss roll.
    """

    seed: int = 0
    push_loss: float = 0.0
    push_extra_delay: float = 0.0
    report_loss: float = 0.0
    scan_failure: float = 0.0
    sensor_dropout: float = 0.0
    trace_dropout: float = 0.0
    offline_windows: Tuple[OfflineWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value!r}")
        if self.push_extra_delay < 0:
            raise ConfigError(
                f"push_extra_delay must be >= 0, got {self.push_extra_delay!r}"
            )
        # Accept any iterable of windows, but store a hashable tuple.
        object.__setattr__(self, "offline_windows", tuple(self.offline_windows))


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run accounting."""

    channel: str  # "push_loss" | "device_offline" | "scan_failure" | ...
    time: float
    target: str = ""  # device/sensor name the fault hit


class FaultInjector:
    """Runtime oracle: components ask it whether *this* operation fails.

    Each query channel draws from its own deterministic stream derived
    from ``(plan.seed, channel)``; the injector also keeps per-channel
    counts and a full :class:`FaultEvent` trail so experiments can
    report exactly what was injected.
    """

    def __init__(self, sim: Simulator, plan: Optional[FaultPlan] = None) -> None:
        self.sim = sim
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self.events: List[FaultEvent] = []
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def active(self) -> bool:
        """Whether a plan is loaded (inactive injectors never inject)."""
        return self.plan is not None

    def rearm(self, plan: Optional[FaultPlan]) -> None:
        """Swap the plan in place and reset all per-run fault state.

        Snapshot support (:mod:`repro.experiments.pool`): components
        capture a reference to their environment's injector at
        construction, so a restored world re-arms the *same object* for
        the next home — fresh channel streams (derived from the new
        plan's seed), zeroed counts, and an empty event trail.  With
        ``plan=None`` the injector returns to its never-inject state.
        """
        self.plan = plan
        self.counts = {}
        self.events = []
        self._streams = {}

    # -- channel queries ----------------------------------------------------
    def push_dropped(self, device_name: str) -> bool:
        """Does the cloud silently lose this push?"""
        return self._roll("push_loss", "push_loss", device_name)

    def push_extra_delay(self, device_name: str) -> float:
        """Extra congestion delay added to a surviving push."""
        if self.plan is None or self.plan.push_extra_delay <= 0.0:
            return 0.0
        delay = float(self._stream("push_extra_delay").exponential(
            self.plan.push_extra_delay
        ))
        self._record("push_extra_delay", device_name)
        return delay

    def device_offline(self, device_name: str) -> bool:
        """Is the device unreachable right now?  Pure clock check."""
        if self.plan is None:
            return False
        now = self.sim.now
        if any(w.covers(device_name, now) for w in self.plan.offline_windows):
            self._record("device_offline", device_name)
            return True
        return False

    def scan_failed(self, scanner_name: str) -> bool:
        """Does this BLE scan window close without catching a frame?"""
        return self._roll("scan_failure", "scan_failure", scanner_name)

    def report_dropped(self, device_name: str) -> bool:
        """Is the device's LAN/WAN report to the guard lost?"""
        return self._roll("report_loss", "report_loss", device_name)

    def sensor_missed(self, sensor_name: str) -> bool:
        """Does the stair motion sensor sleep through this traversal?"""
        return self._roll("sensor_dropout", "sensor_dropout", sensor_name)

    def trace_dropped(self, device_name: str) -> bool:
        """Does this device fail to record its triggered floor trace?"""
        return self._roll("trace_dropout", "trace_dropout", device_name)

    # -- accounting ----------------------------------------------------------
    def count(self, channel: str) -> int:
        """Injected faults on one channel so far."""
        return self.counts.get(channel, 0)

    @property
    def total_injected(self) -> int:
        """Total faults injected across all channels."""
        return sum(self.counts.values())

    # -- internals -----------------------------------------------------------
    def _roll(self, field_name: str, channel: str, target: str) -> bool:
        if self.plan is None:
            return False
        probability = getattr(self.plan, field_name)
        if probability <= 0.0:
            return False
        if probability < 1.0 and self._stream(channel).random() >= probability:
            return False
        self._record(channel, target)
        return True

    def _record(self, channel: str, target: str) -> None:
        self.counts[channel] = self.counts.get(channel, 0) + 1
        self.events.append(FaultEvent(channel=channel, time=self.sim.now, target=target))

    def _stream(self, channel: str) -> np.random.Generator:
        generator = self._streams.get(channel)
        if generator is None:
            seed = self.plan.seed if self.plan is not None else 0
            digest = hashlib.sha256(f"{seed}/faults/{channel}".encode("utf-8")).digest()
            generator = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            self._streams[channel] = generator
        return generator


def offline_outage(start: float, end: float) -> OfflineWindow:
    """A home-wide outage window (every device unreachable)."""
    return OfflineWindow(device=ANY_DEVICE, start=start, end=end)
