"""Deterministic fault injection for the push/scan/report chain.

See :mod:`repro.faults.plan` for the model; :class:`FaultPlan` is the
declarative description, :class:`FaultInjector` the runtime oracle the
substrate components consult.  Everything is a no-op unless a plan is
active, so fault-free runs are bit-for-bit unchanged.
"""

from repro.faults.plan import (
    ANY_DEVICE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    OfflineWindow,
    offline_outage,
)

__all__ = [
    "ANY_DEVICE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "OfflineWindow",
    "offline_outage",
]
