"""Cloud backends: the AVS server, the Google server, and misc hosts.

Both command clouds enforce TLS record-sequence continuity on every
connection: a record arriving out of sequence (because the guard
discarded held records) triggers an alert and an orderly close —
exactly the mechanism of the paper's Figure 4, case III.  Command
*execution* only happens when the final command record arrives on an
intact session, which is the experiments' ground truth for blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host
from repro.net.packet import Packet, Protocol, TlsRecordType
from repro.net.tcp import TcpConnection, TcpStack
from repro.net.tls import TlsSession, TlsViolation
from repro.speakers.signatures import HEARTBEAT_LEN

ALERT_RECORD_LEN = 31
DIRECTIVE_RECORD_LEN = 320

ExecuteCallback = Callable[[int], None]


@dataclass
class CloudStats:
    """Counters the experiments assert on."""

    records_received: int = 0
    heartbeats_answered: int = 0
    commands_executed: int = 0
    tls_violations: List[TlsViolation] = field(default_factory=list)
    sessions_opened: int = 0
    sessions_closed: int = 0


class _SessionState:
    def __init__(self) -> None:
        self.tls = TlsSession()
        self.dead = False


class AvsCloud(Host):
    """The Amazon AVS backend (``avs-alexa-4-na.amazon.com``).

    Responds to heartbeats, executes commands, and streams response
    audio whose segment plan the speaker then speaks (generating the
    paper's response-phase upload spikes).
    """

    PROCESSING_DELAY = (2.8, 4.5)  # command end -> response audio
    DIRECTIVE_DELAY = 0.025  # quick server acknowledgement (Figure 4)

    def __init__(self, name: str, ip: IPv4Address, rng: np.random.Generator) -> None:
        super().__init__(name, ip)
        self.stack = TcpStack(self)
        self._rng = rng
        self.stats = CloudStats()
        self.on_execute: Optional[ExecuteCallback] = None
        self.on_session_closed: Optional[Callable[[str], None]] = None
        self._sessions: Dict[Tuple[Endpoint, Endpoint], _SessionState] = {}
        self.stack.listen(443, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        state = _SessionState()
        self._sessions[conn.four_tuple] = state
        self.stats.sessions_opened += 1
        # partial() over bound methods, not lambdas: the AVS session is
        # long-lived, and deepcopy-based world snapshots must rebind
        # these callbacks into the copied graph (lambdas are copied as
        # shared atoms; see repro.experiments.pool).
        conn.on_record = partial(self._on_record, state)
        conn.on_close = partial(self._on_close, state)

    def _on_close(self, state: _SessionState, conn: TcpConnection, reason: str) -> None:
        self._sessions.pop(conn.four_tuple, None)
        self.stats.sessions_closed += 1
        if self.on_session_closed is not None:
            self.on_session_closed(reason)

    def _on_record(self, state: _SessionState, conn: TcpConnection, packet: Packet) -> None:
        if state.dead:
            return
        self.stats.records_received += 1
        violation = state.tls.accept_record(packet.tls_record_seq, conn.sim.now)
        if violation is not None:
            # Record gap: the held packets were dropped by a middlebox.
            # Alert and close, as a real TLS stack would on a MAC failure.
            state.dead = True
            self.stats.tls_violations.append(violation)
            self._send(conn, state, ALERT_RECORD_LEN, TlsRecordType.ALERT)
            conn.close()
            return
        if packet.payload_len == HEARTBEAT_LEN and packet.meta.get("heartbeat"):
            self.stats.heartbeats_answered += 1
            self._schedule_send(conn, state, 0.004, HEARTBEAT_LEN,
                                TlsRecordType.APPLICATION_DATA, {"heartbeat_ack": True})
            return
        if packet.meta.get("command_end"):
            interaction_id = int(packet.meta["interaction_id"])
            segments: List[int] = list(packet.meta.get("response_segments", []))
            self._execute(conn, state, interaction_id, segments)

    def _execute(
        self,
        conn: TcpConnection,
        state: _SessionState,
        interaction_id: int,
        segments: List[int],
    ) -> None:
        self.stats.commands_executed += 1
        if self.on_execute is not None:
            self.on_execute(interaction_id)
        # Quick directive acknowledgement (the reply the paper observes
        # ~40 ms after the command packets reach the cloud).
        self._schedule_send(conn, state, self.DIRECTIVE_DELAY, DIRECTIVE_RECORD_LEN,
                            TlsRecordType.APPLICATION_DATA,
                            {"directive": True, "interaction_id": interaction_id})
        # Response audio after transcription + TTS.
        delay = float(self._rng.uniform(*self.PROCESSING_DELAY))
        meta = {"response_segments": segments, "interaction_id": interaction_id}
        burst = [int(self._rng.integers(700, 1400))
                 for _ in range(3 + 2 * max(len(segments), 1))]

        def send_response() -> None:
            if state.dead or not conn.is_established:
                return
            for index, length in enumerate(burst):
                record_meta = dict(meta) if index == 0 else {}
                self._schedule_send(conn, state, index * 0.01, length,
                                    TlsRecordType.APPLICATION_DATA, record_meta)

        conn.sim.schedule(delay, send_response)

    # -- send helpers ------------------------------------------------------
    def _send(self, conn: TcpConnection, state: _SessionState, length: int,
              tls_type: TlsRecordType, meta: Optional[dict] = None) -> None:
        if not conn.is_established:
            return
        conn.send_record(length, tls_type, tls_record_seq=state.tls.next_send_seq(),
                         meta=meta or {})

    def _schedule_send(self, conn: TcpConnection, state: _SessionState, delay: float,
                       length: int, tls_type: TlsRecordType,
                       meta: Optional[dict] = None) -> None:
        conn.sim.schedule(delay, self._send, conn, state, length, tls_type, meta)


class GoogleCloud(Host):
    """The Google Assistant backend (``www.google.com``).

    Accepts on-demand TCP sessions and QUIC (UDP) flows.  Responses are
    a single audio burst; the Mini produces no upload spikes afterwards.
    """

    PROCESSING_DELAY = (2.6, 4.0)
    DIRECTIVE_DELAY = 0.025

    def __init__(self, name: str, ip: IPv4Address, rng: np.random.Generator) -> None:
        super().__init__(name, ip)
        self.stack = TcpStack(self)
        self._rng = rng
        self.stats = CloudStats()
        self.on_execute: Optional[ExecuteCallback] = None
        self._sessions: Dict[Tuple[Endpoint, Endpoint], _SessionState] = {}
        self.stack.listen(443, self._accept)
        self.register_udp_handler(443, self._on_datagram)

    # -- TCP side ------------------------------------------------------------
    def _accept(self, conn: TcpConnection) -> None:
        state = _SessionState()
        self._sessions[conn.four_tuple] = state
        self.stats.sessions_opened += 1
        conn.on_record = partial(self._on_record, state)
        conn.on_close = partial(self._on_tcp_close, state)

    def _on_tcp_close(self, state: _SessionState, conn: TcpConnection, reason: str) -> None:
        self._sessions.pop(conn.four_tuple, None)
        self.stats.sessions_closed += 1

    def _on_record(self, state: _SessionState, conn: TcpConnection, packet: Packet) -> None:
        if state.dead:
            return
        self.stats.records_received += 1
        violation = state.tls.accept_record(packet.tls_record_seq, conn.sim.now)
        if violation is not None:
            state.dead = True
            self.stats.tls_violations.append(violation)
            if conn.is_established:
                conn.send_record(ALERT_RECORD_LEN, TlsRecordType.ALERT,
                                 tls_record_seq=state.tls.next_send_seq())
            conn.close()
            return
        if packet.meta.get("command_end"):
            interaction_id = int(packet.meta["interaction_id"])
            self._execute_tcp(conn, state, interaction_id)

    def _execute_tcp(self, conn: TcpConnection, state: _SessionState, interaction_id: int) -> None:
        self.stats.commands_executed += 1
        if self.on_execute is not None:
            self.on_execute(interaction_id)

        def send(length: int, meta: dict) -> None:
            if state.dead or not conn.is_established:
                return
            conn.send_record(length, TlsRecordType.APPLICATION_DATA,
                             tls_record_seq=state.tls.next_send_seq(), meta=meta)

        conn.sim.schedule(self.DIRECTIVE_DELAY, send, DIRECTIVE_RECORD_LEN,
                          {"directive": True, "interaction_id": interaction_id})
        delay = float(self._rng.uniform(*self.PROCESSING_DELAY))
        meta = {"response": True, "interaction_id": interaction_id}

        def send_response() -> None:
            for index in range(4):
                length = int(self._rng.integers(700, 1400))
                conn.sim.schedule(index * 0.01, send, length, meta if index == 0 else {})

        conn.sim.schedule(delay, send_response)

    # -- QUIC (UDP) side -------------------------------------------------------
    def _on_datagram(self, packet: Packet) -> None:
        self.stats.records_received += 1
        if not packet.meta.get("command_end"):
            return
        interaction_id = int(packet.meta["interaction_id"])
        self.stats.commands_executed += 1
        if self.on_execute is not None:
            self.on_execute(interaction_id)
        client = packet.src
        server = packet.dst

        def reply(length: int, meta: dict, delay: float) -> None:
            def do_send() -> None:
                self.send(Packet(
                    src=server, dst=client, protocol=Protocol.UDP,
                    payload_len=length, tls_type=TlsRecordType.APPLICATION_DATA,
                    meta=meta,
                ))
            self.network.sim.schedule(delay, do_send)

        reply(DIRECTIVE_RECORD_LEN, {"directive": True, "interaction_id": interaction_id},
              self.DIRECTIVE_DELAY)
        delay = float(self._rng.uniform(*self.PROCESSING_DELAY))
        for index in range(4):
            length = int(self._rng.integers(700, 1400))
            meta = {"response": True, "interaction_id": interaction_id} if index == 0 else {}
            reply(length, meta, delay + index * 0.01)


class MiscCloud(Host):
    """A generic Amazon-side server (metrics, updates, NTP...).

    Exists so the Echo Dot's boot traffic contains connections whose
    signatures the guard must *not* confuse with the AVS signature.
    """

    def __init__(self, name: str, ip: IPv4Address) -> None:
        super().__init__(name, ip)
        self.stack = TcpStack(self)
        self.records_received = 0
        self.stack.listen(443, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        conn.on_record = self._on_record

    def _on_record(self, conn: TcpConnection, packet: Packet) -> None:
        self.records_received += 1
