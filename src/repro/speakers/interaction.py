"""Voice-interaction traffic scripts.

:class:`EchoTrafficModel` converts a spoken command into the packet
schedule the Echo Dot emits: the activation spike (spike 1 in the
paper's Figure 3), small streaming packets while the user talks, the
audio-upload spike at the end of the command (spike 2), and — after the
cloud responds — one upload spike at the end of each spoken response
segment (spikes 3-5).  The per-spike length statistics implement the
paper's measured patterns, including the rare anomalous command spikes
that carry neither marker lengths nor a fixed pattern and therefore
evade the recognizer (the 2-in-134 misses of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.speakers import signatures as sig


@dataclass(frozen=True)
class RecordSpec:
    """One application-data record to send: time offset + length."""

    offset: float  # seconds after the interaction's traffic starts
    length: int
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ResponseSegment:
    """One spoken response segment (e.g. one NBA game schedule)."""

    words: int

    @property
    def duration(self) -> float:
        """Seconds to speak this segment at 2 words/s."""
        return self.words / 2.0  # paper's 2 words/second pace


@dataclass
class CommandPhaseScript:
    """Phase-1 traffic for one command."""

    records: List[RecordSpec]
    variant: str  # "marker" | "fixed" | "anomalous"

    @property
    def duration(self) -> float:
        """Offset of the phase's last record."""
        return self.records[-1].offset if self.records else 0.0


class EchoTrafficModel:
    """Generates Echo Dot interaction traffic.

    ``anomalous_rate`` is the probability that a command spike carries
    neither a marker length nor a fixed pattern; the paper's Table I
    measured roughly 1.5 % such spikes on randomly generated commands,
    and none during the scripted 7-day RSSI experiments.
    """

    ACTIVATION_GAP = (0.005, 0.020)  # spacing inside a spike
    SMALL_PACKET_GAP = (0.15, 0.35)  # streaming packets while speaking
    AUDIO_RATE = 3.0  # upload records per second of speech

    def __init__(
        self,
        rng: np.random.Generator,
        anomalous_rate: float = 0.015,
        marker_rate: float = 0.95,
    ) -> None:
        if not 0.0 <= anomalous_rate <= 1.0:
            raise ValueError(f"anomalous_rate must be in [0, 1], got {anomalous_rate!r}")
        self._rng = rng
        self.anomalous_rate = anomalous_rate
        self.marker_rate = marker_rate
        # Experiments can pin the response plan (e.g. Figure 3's
        # three-game NBA answer); None keeps the random distribution.
        self.forced_response_segments: Optional[List[int]] = None

    # -- phase 1 ------------------------------------------------------------
    def command_phase(self, speech_duration: float) -> CommandPhaseScript:
        """Traffic emitted from activation until the upload finishes."""
        rng = self._rng
        records: List[RecordSpec] = []
        variant = self._pick_variant()
        offset = 0.0

        # Activation spike (spike 1): five packets whose lengths encode
        # the phase-1 signature (or fail to, for anomalous spikes).
        for length in self._activation_lengths(variant):
            records.append(RecordSpec(offset, length))
            offset += float(rng.uniform(*self.ACTIVATION_GAP))

        # Small streaming packets while the user speaks.
        while offset < speech_duration:
            length = int(rng.integers(*sig.SMALL_RECORD_RANGE))
            records.append(RecordSpec(offset, length))
            offset += float(rng.uniform(*self.SMALL_PACKET_GAP))

        # Audio-upload spike (spike 2) right after speech ends.
        offset = speech_duration + float(rng.uniform(0.03, 0.10))
        upload_count = max(4, int(round(speech_duration * self.AUDIO_RATE)))
        for _ in range(upload_count):
            length = int(rng.integers(*sig.AUDIO_RECORD_RANGE))
            records.append(RecordSpec(offset, length))
            offset += float(rng.uniform(0.006, 0.015))

        return CommandPhaseScript(records=records, variant=variant)

    def _pick_variant(self) -> str:
        roll = float(self._rng.random())
        if roll < self.anomalous_rate:
            return "anomalous"
        if roll < self.anomalous_rate + (1.0 - self.anomalous_rate) * (1.0 - self.marker_rate):
            return "fixed"
        return "marker"

    def _activation_lengths(self, variant: str) -> List[int]:
        rng = self._rng
        first = self._first_packet_length()
        if variant == "fixed":
            pattern = sig.PHASE1_FIXED_PATTERNS[int(rng.integers(0, len(sig.PHASE1_FIXED_PATTERNS)))]
            return [first, *pattern]
        filler = [int(rng.choice(sig.PHASE1_FILLER_POOL)) for _ in range(4)]
        if variant == "marker":
            marker = int(rng.choice(sig.PHASE1_MARKERS))
            position = int(rng.integers(1, 5))
            lengths = [first, *filler]
            lengths[position] = marker
            return lengths
        # Anomalous: no markers, and avoid accidentally matching a
        # fixed pattern (filler pool choices could collide).
        lengths = [first, *filler]
        while tuple(lengths[1:5]) in sig.PHASE1_FIXED_PATTERNS:
            lengths[1 + int(rng.integers(0, 4))] = int(rng.choice(sig.PHASE1_FILLER_POOL))
        return lengths

    def _first_packet_length(self) -> int:
        if self._rng.random() < 0.5:
            return sig.PHASE1_COMMON_FIRST
        return int(self._rng.integers(*sig.PHASE1_FIRST_RANGE))

    # -- phase 2 ------------------------------------------------------------
    def response_plan(self, max_segments: int = 3) -> List[ResponseSegment]:
        """How many spoken segments the cloud's reply will contain.

        The distribution is skewed toward single-segment answers; the
        paper's Table I saw about 1.1 response spikes per invocation,
        while its Figure 3 example (three NBA schedules) had three.
        """
        if self.forced_response_segments is not None:
            return [ResponseSegment(words=w) for w in self.forced_response_segments]
        roll = float(self._rng.random())
        if roll < 0.90 or max_segments == 1:
            count = 1
        elif roll < 0.98 or max_segments == 2:
            count = 2
        else:
            count = 3
        return [
            ResponseSegment(words=int(self._rng.integers(6, 14)))
            for _ in range(min(count, max_segments))
        ]

    def response_spike(self) -> List[RecordSpec]:
        """The upload spike the Echo emits after speaking one segment."""
        rng = self._rng
        records: List[RecordSpec] = []
        offset = 0.0
        # A short prefix of ordinary packets may precede the marker pair;
        # the pair always completes within the first seven packets.
        prefix_len = int(rng.integers(0, 5)) if rng.random() < 0.9 else 5
        for _ in range(prefix_len):
            records.append(RecordSpec(offset, int(rng.choice(sig.PHASE2_PREFIX_POOL))))
            offset += float(rng.uniform(*self.ACTIVATION_GAP))
        for length in sig.PHASE2_MARKER_PAIR:
            records.append(RecordSpec(offset, length))
            offset += float(rng.uniform(*self.ACTIVATION_GAP))
        for _ in range(int(rng.integers(6, 18))):
            records.append(RecordSpec(offset, int(rng.integers(*sig.PHASE2_BODY_RANGE))))
            offset += float(rng.uniform(*self.ACTIVATION_GAP))
        return records


class GoogleTrafficModel:
    """Google Home Mini per-command traffic (single-phase).

    The Mini opens a fresh connection per command — TCP or QUIC
    depending on network conditions — uploads the audio, receives the
    response, and goes idle.  There are no response-phase upload spikes
    (Section IV-B), which is why any spike after idle is a command.
    """

    QUIC_PROBABILITY = 0.45
    AUDIO_RATE = 3.0

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def pick_transport(self) -> str:
        """Choose QUIC or TCP for the next session."""
        return "quic" if self._rng.random() < self.QUIC_PROBABILITY else "tcp"

    def command_upload(self, speech_duration: float) -> List[RecordSpec]:
        """Record schedule for one command upload."""
        rng = self._rng
        records: List[RecordSpec] = [RecordSpec(0.0, int(rng.integers(380, 520)))]
        offset = float(rng.uniform(0.01, 0.03))
        while offset < speech_duration:
            records.append(RecordSpec(offset, int(rng.integers(900, 1400))))
            offset += float(rng.uniform(0.10, 0.25))
        # Final burst when speech ends.
        for _ in range(max(3, int(speech_duration * 1.5))):
            records.append(RecordSpec(offset, int(rng.integers(900, 1400))))
            offset += float(rng.uniform(0.006, 0.015))
        return records
