"""Smart-speaker base class and interaction bookkeeping.

A :class:`SmartSpeaker` is a network host with a microphone: the home
environment delivers audible utterances to it, and the subclass turns
each one into cloud traffic.  The :class:`InteractionRecord` registry is
the experiments' ground truth — whether a command ultimately *executed*
at the cloud is what Tables II-IV score.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.audio.verification import VoiceMatchVerifier
from repro.audio.voiceprint import UtteranceSource, VoiceUtterance
from repro.home.environment import HomeEnvironment
from repro.net.addresses import IPv4Address
from repro.net.link import Host
from repro.net.tcp import TcpStack
from repro.radio.geometry import Point

_interaction_ids = itertools.count(1)


def peek_interaction_id() -> int:
    """The id the next interaction will get (snapshot bookkeeping)."""
    global _interaction_ids
    value = next(_interaction_ids)
    _interaction_ids = itertools.count(value)
    return value


def reset_interaction_ids(start: int = 1) -> None:
    """Restart interaction numbering (snapshot restore / test isolation)."""
    global _interaction_ids
    _interaction_ids = itertools.count(start)


class InteractionOutcome(enum.Enum):
    """What ultimately happened to a voice command."""

    PENDING = "pending"
    EXECUTED = "executed"  # command reached and was executed by the cloud
    BLOCKED = "blocked"  # traffic dropped; cloud never executed it
    REFUSED = "refused"  # speaker-side voice match rejected it


@dataclass
class InteractionRecord:
    """Ground-truth record of one voice command."""

    interaction_id: int
    text: str
    source: UtteranceSource
    speaker_label: str
    started_at: float
    speech_ends_at: float
    executed_at: Optional[float] = None
    responded_at: Optional[float] = None
    refused: bool = False
    aborted: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def is_attack(self) -> bool:
        """Whether the command came from an attacker."""
        return self.source.is_attack

    @property
    def outcome(self) -> InteractionOutcome:
        """The command's final disposition."""
        if self.refused:
            return InteractionOutcome.REFUSED
        if self.executed_at is not None:
            return InteractionOutcome.EXECUTED
        if self.aborted:
            return InteractionOutcome.BLOCKED
        return InteractionOutcome.PENDING

    def settle(self) -> None:
        """Finalize: a command still pending after its experiment window
        closed was blocked (its packets never reached the cloud)."""
        if self.outcome is InteractionOutcome.PENDING:
            self.aborted = True


class SmartSpeaker(Host):
    """Base class for the Echo Dot and Google Home Mini models."""

    vendor = "generic"

    def __init__(
        self,
        name: str,
        ip: IPv4Address,
        env: HomeEnvironment,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(name, ip)
        self.env = env
        self.sim = env.sim
        self._rng = rng
        self.tcp_stack = TcpStack(self)
        self.interactions: Dict[int, InteractionRecord] = {}
        self.voice_match: Optional[VoiceMatchVerifier] = None
        self.on_interaction_started: Optional[Callable[[InteractionRecord], None]] = None
        # 2.4 GHz band occupancy: set while heavy audio upload runs.
        self.uploading_until = 0.0
        env.register_microphone(self.on_audio)
        env.wifi_busy_providers.append(self.is_uploading)

    def is_uploading(self) -> bool:
        """Whether the speaker is currently streaming audio upstream."""
        return self.sim.now < self.uploading_until

    # -- voice-match option (the commercial baseline protection) ----------
    def enable_voice_match(self, verifier: VoiceMatchVerifier) -> None:
        """Turn on the built-in voice recognition (Section I notes this
        protection exists but is circumvented by replay/synthesis)."""
        self.voice_match = verifier

    # -- microphone --------------------------------------------------------
    def on_audio(self, utterance: VoiceUtterance, source_point: Point) -> None:
        """Environment callback: an audible utterance reached the mics."""
        record = InteractionRecord(
            interaction_id=next(_interaction_ids),
            text=utterance.text,
            source=utterance.source,
            speaker_label=utterance.speaker_label,
            started_at=self.sim.now,
            speech_ends_at=self.sim.now + utterance.duration,
        )
        self.interactions[record.interaction_id] = record
        if self.voice_match is not None and self.voice_match.enrolled:
            if not self.voice_match.verify(utterance).accepted:
                record.refused = True
                return
        if self.on_interaction_started:
            self.on_interaction_started(record)
        self._start_interaction(record, utterance)

    def _start_interaction(self, record: InteractionRecord, utterance: VoiceUtterance) -> None:
        raise NotImplementedError

    # -- registry helpers ----------------------------------------------------
    def mark_executed(self, interaction_id: int) -> None:
        """Cloud callback: the command executed."""
        record = self.interactions.get(interaction_id)
        if record is not None and record.executed_at is None:
            record.executed_at = self.sim.now

    def mark_responded(self, interaction_id: int) -> None:
        """The spoken response finished playing."""
        record = self.interactions.get(interaction_id)
        if record is not None:
            record.responded_at = self.sim.now

    def settle_all(self) -> List[InteractionRecord]:
        """Finalize every interaction and return them in start order."""
        records = sorted(self.interactions.values(), key=lambda r: r.started_at)
        for record in records:
            record.settle()
        return records
