"""The Google Home Mini traffic model.

Differences from the Echo Dot that matter to the guard (Section IV-B):

* the connection to ``www.google.com`` is *on-demand* — the TLS/QUIC
  session is only established after the speaker is invoked, and every
  session is preceded by a DNS query, so the guard can track the cloud
  endpoint without a connection signature;
* the transport switches between QUIC (UDP) and TCP with network
  conditions, so the Traffic Handler needs its UDP forwarder;
* there are no response-phase upload spikes: any spike after an idle
  period is a voice command.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from repro.audio.voiceprint import VoiceUtterance
from repro.errors import ConnectionClosedError
from repro.home.environment import HomeEnvironment
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.dns import DnsClient
from repro.net.packet import TlsRecordType
from repro.net.tcp import TcpConnection
from repro.net.tls import TlsSession
from repro.net.udp import UdpFlow
from repro.speakers import signatures as sig
from repro.speakers.base import InteractionRecord, SmartSpeaker
from repro.speakers.interaction import GoogleTrafficModel, RecordSpec

_udp_ports = itertools.count(52000)


class GoogleHomeMini(SmartSpeaker):
    """Google Home Mini: on-demand sessions, single-phase commands."""

    vendor = "google"
    ACTIVATION_LAG = 0.7
    IDLE_CLOSE = (8.0, 12.0)  # TCP session lingers briefly, then closes

    def __init__(
        self,
        name: str,
        ip: IPv4Address,
        env: HomeEnvironment,
        rng: np.random.Generator,
        dns_server: Endpoint,
        traffic_model: Optional[GoogleTrafficModel] = None,
    ) -> None:
        super().__init__(name, ip, env, rng)
        self.dns = DnsClient(self, dns_server)
        self.traffic = traffic_model or GoogleTrafficModel(rng)
        self.sessions_opened = 0
        self.quic_sessions = 0

    def boot(self) -> None:
        """The Mini does nothing on the wire until it is invoked."""

    # -- interactions ------------------------------------------------------------
    def _start_interaction(self, record: InteractionRecord, utterance: VoiceUtterance) -> None:
        transport = self.traffic.pick_transport()
        record.meta["transport"] = transport
        speech = max(utterance.duration - self.ACTIVATION_LAG, 0.5)
        script = self.traffic.command_upload(speech)
        # The Mini streams the audio continuously while the user talks,
        # occupying the 2.4 GHz band for the whole command.
        self.uploading_until = max(
            self.uploading_until, self.sim.now + self.ACTIVATION_LAG + speech + 0.6
        )

        def on_resolved(ips: List[IPv4Address]) -> None:
            if not ips:
                return
            server = Endpoint(ips[0], 443)
            if transport == "quic":
                self._run_quic(record, server, script)
            else:
                self._run_tcp(record, server, script)

        self.sim.schedule(self.ACTIVATION_LAG * 0.5,
                          lambda: self.dns.resolve(sig.GOOGLE_DOMAIN, on_resolved))

    # -- TCP session ---------------------------------------------------------------
    def _run_tcp(self, record: InteractionRecord, server: Endpoint,
                 script: List[RecordSpec]) -> None:
        self.sessions_opened += 1
        conn = self.tcp_stack.connect(server)
        tls = TlsSession()

        def on_established(c: TcpConnection) -> None:
            last = len(script) - 1
            for index, spec in enumerate(script):
                meta = {}
                if index == last:
                    meta = {"command_end": True, "interaction_id": record.interaction_id}
                self.sim.schedule(spec.offset, self._send_tcp, c, tls, spec.length, meta)
            idle = script[last].offset + float(self._rng.uniform(*self.IDLE_CLOSE))
            self.sim.schedule(idle, self._close_if_open, c)

        def on_record(c: TcpConnection, packet) -> None:
            if packet.meta.get("response"):
                self.mark_responded(int(packet.meta["interaction_id"]))

        conn.on_established = on_established
        conn.on_record = on_record

    def _send_tcp(self, conn: TcpConnection, tls: TlsSession, length: int, meta: dict) -> None:
        if not conn.is_established:
            return
        try:
            conn.send_record(length, tls_record_seq=tls.next_send_seq(), meta=meta)
        except ConnectionClosedError:
            pass

    @staticmethod
    def _close_if_open(conn: TcpConnection) -> None:
        if conn.is_established:
            conn.close()

    # -- QUIC session ---------------------------------------------------------------
    def _run_quic(self, record: InteractionRecord, server: Endpoint,
                  script: List[RecordSpec]) -> None:
        self.sessions_opened += 1
        self.quic_sessions += 1
        port = next(_udp_ports)

        def on_datagram(flow: UdpFlow, packet) -> None:
            if packet.meta.get("response"):
                self.mark_responded(int(packet.meta["interaction_id"]))

        flow = UdpFlow(self, Endpoint(self.ip, port), server, on_datagram)
        last = len(script) - 1
        for index, spec in enumerate(script):
            meta = {}
            if index == last:
                meta = {"command_end": True, "interaction_id": record.interaction_id}
            self.sim.schedule(spec.offset, flow.send, spec.length,
                              TlsRecordType.APPLICATION_DATA, meta)
