"""Packet-level signature constants (paper Section IV-B).

All lengths are TLS application-data record lengths in bytes, exactly
as the paper reports them.
"""

from __future__ import annotations

AVS_DOMAIN = "avs-alexa-4-na.amazon.com"
GOOGLE_DOMAIN = "www.google.com"

# The Echo Dot announces every new connection to the AVS server with
# this exact sequence of packet lengths ("63, 33, 653, 131, 73, 131,
# 188, 73, 131, 73, 131, 73, 131, 77, 33, 33").  The guard uses it to
# re-learn the AVS server's IP when it changes without a DNS query.
AVS_CONNECT_SIGNATURE = (63, 33, 653, 131, 73, 131, 188, 73, 131, 73, 131, 73, 131, 77, 33, 33)

# Connection signatures of the six other Amazon servers the Echo Dot
# talks to; the paper verified they differ from the AVS signature.
OTHER_AMAZON_SIGNATURES = {
    "device-metrics-us.amazon.com": (87, 33, 415, 131, 73, 131, 96, 73),
    "api.amazon.com": (63, 41, 517, 131, 73, 188, 73, 131),
    "dcape-na.amazon.com": (71, 33, 653, 145, 73, 131, 188, 73),
    "softwareupdates.amazon.com": (95, 33, 589, 131, 88, 131, 73, 73),
    "ntp-g7g.amazon.com": (48, 48, 48, 48),
    "todo-ta-g7g.amazon.com": (63, 33, 429, 131, 73, 112, 188, 73),
}

# Idle-keeping heartbeat: one 41-byte record every 30 seconds.
HEARTBEAT_LEN = 41
HEARTBEAT_PERIOD = 30.0

# Command phase (first phase).  Most spikes contain one of the marker
# lengths among their first five packets; otherwise the phase opens
# with a 250-650-byte packet followed by one of three fixed patterns.
PHASE1_MARKERS = (138, 75)
PHASE1_FIRST_RANGE = (250, 650)
PHASE1_COMMON_FIRST = 277
PHASE1_FIXED_PATTERNS = (
    (131, 277, 131, 113),
    (131, 113, 113, 113),
    (131, 121, 277, 131),
)

# Response phase (second phase): a 77-byte record immediately followed
# by a 33-byte record, always within the first seven packets.
PHASE2_MARKER_PAIR = (77, 33)
PHASE2_MARKER_MAX_INDEX = 7  # pair always completes by the 7th packet

# Pools for non-marker packet lengths.  Phase-1 filler must not collide
# with the phase-2 pair, and phase-2 prefix filler must not collide
# with phase-1 markers or look like a fixed-pattern opener.
PHASE1_FILLER_POOL = (131, 73, 113, 121, 188, 277, 96)
PHASE2_PREFIX_POOL = (55, 61, 89, 97, 105, 126)
PHASE2_BODY_RANGE = (50, 700)

# Voice upload: near-MTU audio records during the command.
AUDIO_RECORD_RANGE = (1200, 1460)
SMALL_RECORD_RANGE = (60, 130)
