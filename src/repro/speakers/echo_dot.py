"""The Amazon Echo Dot traffic model.

Reproduces the paper's measured behaviour (Section IV-B):

* on boot, DNS lookups and connections to several Amazon servers, each
  connection opening with its own packet-length signature;
* one long-lived AVS connection, heartbeating 41 bytes every 30 s;
* on disconnection, a reconnect to a possibly different AVS IP —
  *sometimes without any DNS query* (the device uses out-of-band
  endpoint knowledge), which is why the guard needs the connection
  signature to keep tracking the AVS server;
* two-phase voice-command traffic: activation spike + streaming +
  audio-upload spike, then one upload spike per spoken response
  segment.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

import numpy as np

from repro.audio.voiceprint import VoiceUtterance
from repro.errors import ConnectionClosedError
from repro.home.environment import HomeEnvironment
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.dns import DnsClient
from repro.net.tcp import TcpConnection, TcpTuning
from repro.net.tls import TlsSession
from repro.sim import compat
from repro.sim.process import DeadlineTimer
from repro.speakers import signatures as sig
from repro.speakers.base import InteractionRecord, SmartSpeaker
from repro.speakers.interaction import EchoTrafficModel


class EchoDot(SmartSpeaker):
    """Amazon Echo Dot: long-lived AVS connection, two-phase commands."""

    vendor = "amazon"
    ACTIVATION_LAG = 0.65  # wake-word detection -> first spike packet
    RECONNECT_DELAY = (0.4, 1.2)
    SIGNATURE_GAP = (0.005, 0.015)
    DNS_REQUERY_PROBABILITY = 0.5  # chance a reconnect is preceded by DNS

    def __init__(
        self,
        name: str,
        ip: IPv4Address,
        env: HomeEnvironment,
        rng: np.random.Generator,
        dns_server: Endpoint,
        avs_directory: Callable[[], IPv4Address],
        traffic_model: Optional[EchoTrafficModel] = None,
        misc_domains: Optional[List[str]] = None,
    ) -> None:
        super().__init__(name, ip, env, rng)
        self.dns = DnsClient(self, dns_server)
        self.avs_directory = avs_directory
        self.traffic = traffic_model or EchoTrafficModel(rng)
        self.misc_domains = list(misc_domains or [])
        self._conn: Optional[TcpConnection] = None
        self._tls: Optional[TlsSession] = None
        self._heartbeat_handle = None
        self._heartbeat_timer = None
        self._pending: List[tuple] = []  # interactions waiting for a connection
        self._reconnect_scheduled = False
        self.reconnect_count = 0
        self.dns_lookups_for_avs = 0
        # The connect-sequence lengths announced on every AVS
        # connection.  Mutable so experiments can model a firmware
        # update changing the signature (paper Section VII).
        self.connect_signature = tuple(sig.AVS_CONNECT_SIGNATURE)

    # -- lifecycle -----------------------------------------------------------
    def boot(self) -> None:
        """Initial DNS lookups and connections (paper boot sequence)."""
        self.dns_lookups_for_avs += 1
        self.dns.resolve(sig.AVS_DOMAIN, self._connect_avs)
        for domain in self.misc_domains:
            self.dns.resolve(domain, lambda ips, d=domain: self._touch_misc(d, ips))

    def _touch_misc(self, domain: str, ips: List[IPv4Address]) -> None:
        if not ips:
            return
        conn = self.tcp_stack.connect(Endpoint(ips[0], 443))
        tls = TlsSession()
        signature = sig.OTHER_AMAZON_SIGNATURES.get(domain, (64, 33, 500, 131))
        conn.on_established = partial(self._announce_misc, tls, signature)

    def _announce_misc(self, tls: TlsSession, signature: tuple,
                       conn: TcpConnection) -> None:
        offset = 0.0
        for length in signature:
            self.sim.post(offset, self._send_record, conn, tls, length, {})
            offset += float(self._rng.uniform(*self.SIGNATURE_GAP))
        self.sim.post(offset + float(self._rng.uniform(2.0, 5.0)), conn.close)

    def _connect_avs(self, ips: List[IPv4Address]) -> None:
        if not ips:
            return
        self._open_avs_connection(ips[0])

    def _open_avs_connection(self, ip: IPv4Address) -> None:
        self._reconnect_scheduled = False
        conn = self.tcp_stack.connect(Endpoint(ip, 443), tuning=TcpTuning())
        tls = TlsSession()
        # The AVS connection is permanent state: its callbacks must be
        # partials/bound methods so a deepcopy-based world snapshot
        # rebinds them (a lambda here would keep calling the template).
        conn.on_established = partial(self._on_avs_established, tls)
        conn.on_close = self._on_avs_close
        self._conn = conn
        self._tls = tls

    def _on_avs_established(self, tls: TlsSession, conn: TcpConnection) -> None:
        conn.on_record = self._on_avs_record
        # Announce with the connection signature.
        offset = 0.0
        for length in self.connect_signature:
            self.sim.post(offset, self._send_record, conn, tls, length, {})
            offset += float(self._rng.uniform(*self.SIGNATURE_GAP))
        self._schedule_heartbeat()
        # Flush interactions that arrived while disconnected.
        pending, self._pending = self._pending, []
        for record, utterance in pending:
            self._start_interaction(record, utterance)

    def _on_avs_close(self, conn: TcpConnection, reason: str) -> None:
        if conn is not self._conn:
            return
        self._conn = None
        self._tls = None
        self._cancel_heartbeat()
        if self._reconnect_scheduled:
            return
        self._reconnect_scheduled = True
        self.reconnect_count += 1
        delay = float(self._rng.uniform(*self.RECONNECT_DELAY))
        if self._rng.random() < self.DNS_REQUERY_PROBABILITY:
            self.sim.post(delay, self._requery_avs)
        else:
            # Reconnect using out-of-band endpoint knowledge: the guard
            # sees no DNS query and must rely on the signature.
            self.sim.post(delay, self._reconnect_out_of_band)

    def _requery_avs(self) -> None:
        self.dns_lookups_for_avs += 1
        self.dns.resolve(sig.AVS_DOMAIN, self._connect_avs)

    def _reconnect_out_of_band(self) -> None:
        self._open_avs_connection(self.avs_directory())

    @property
    def connected(self) -> bool:
        """Whether the AVS connection is established."""
        return self._conn is not None and self._conn.is_established

    # -- heartbeats ------------------------------------------------------------
    def _schedule_heartbeat(self) -> None:
        if not compat.legacy_kernel_enabled():
            # ~20k heartbeats ride a deadline-bumping timer over a
            # seven-day run; the handle-per-beat path below is the
            # pre-PR baseline.
            timer = self._heartbeat_timer
            if timer is None:
                timer = self._heartbeat_timer = DeadlineTimer(self.sim, self._heartbeat)
            timer.schedule_in(sig.HEARTBEAT_PERIOD)
            return
        self._cancel_heartbeat()
        self._heartbeat_handle = self.sim.schedule(sig.HEARTBEAT_PERIOD, self._heartbeat)

    def _cancel_heartbeat(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        if self._heartbeat_handle is not None:
            self._heartbeat_handle.cancel()
            self._heartbeat_handle = None

    def _heartbeat(self) -> None:
        self._heartbeat_handle = None
        if self.connected and self._tls is not None:
            self._send_record(self._conn, self._tls, sig.HEARTBEAT_LEN, {"heartbeat": True})
            self._schedule_heartbeat()

    # -- interactions ------------------------------------------------------------
    def _start_interaction(self, record: InteractionRecord, utterance: VoiceUtterance) -> None:
        if not self.connected:
            self._pending.append((record, utterance))
            return
        conn, tls = self._conn, self._tls
        speech_after_activation = max(utterance.duration - self.ACTIVATION_LAG, 0.5)
        script = self.traffic.command_phase(speech_after_activation)
        record.meta["traffic_variant"] = script.variant
        segments = [seg.words for seg in self.traffic.response_plan()]
        record.meta["response_segments"] = segments
        base = self.ACTIVATION_LAG
        # The Echo only saturates the band during the upload burst at
        # the end of the command (spike 2).
        self.sim.post(base + speech_after_activation, self._mark_upload_busy)
        last_index = len(script.records) - 1
        for index, spec in enumerate(script.records):
            meta = dict(spec.meta)
            if index == last_index:
                meta.update({
                    "command_end": True,
                    "interaction_id": record.interaction_id,
                    "response_segments": segments,
                })
            self.sim.post(base + spec.offset, self._send_record, conn, tls,
                              spec.length, meta)

    def _on_avs_record(self, conn: TcpConnection, packet) -> None:
        meta = packet.meta
        if meta.get("response_segments") is not None and meta.get("interaction_id"):
            self._play_response(conn, int(meta["interaction_id"]),
                                list(meta["response_segments"]))

    def _play_response(self, conn: TcpConnection, interaction_id: int, segments: List[int]) -> None:
        """Speak each response segment, emitting the phase-2 upload
        spike at the end of each one (spikes 3-5 of Figure 3)."""
        elapsed = 0.0
        for words in segments:
            elapsed += words / 2.0
            spike = self.traffic.response_spike()
            for spec in spike:
                self.sim.post(elapsed + spec.offset, self._send_on_current, spec.length)
        self.sim.post(elapsed + 0.2, self.mark_responded, interaction_id)

    def _mark_upload_busy(self) -> None:
        self.uploading_until = max(self.uploading_until, self.sim.now + 0.6)

    def _send_on_current(self, length: int) -> None:
        if self.connected and self._tls is not None:
            self._send_record(self._conn, self._tls, length, {})

    # -- low-level send ------------------------------------------------------------
    def _send_record(self, conn: TcpConnection, tls: TlsSession, length: int, meta: dict) -> None:
        if not conn.is_established:
            return
        try:
            conn.send_record(length, tls_record_seq=tls.next_send_seq(), meta=meta)
        except ConnectionClosedError:
            pass
