"""Smart-speaker traffic models and cloud backends.

These reproduce, at packet-metadata level, the traffic behaviour the
paper measured with Wireshark (Section IV-B):

* the Echo Dot keeps one long-lived TLS connection to the AVS server,
  heartbeats 41 bytes every 30 s, announces a reconnection with a fixed
  16-packet length signature, and exchanges two-phase voice-command
  traffic whose per-phase length patterns the recognizer keys on;
* the Google Home Mini connects on demand per command (TCP or QUIC),
  always preceded by a DNS query, with no response-phase upload spikes;
* both clouds verify TLS record continuity and close the session on a
  gap — the mechanism the Traffic Handler exploits to kill held-and-
  dropped commands.
"""

from repro.speakers.base import InteractionOutcome, InteractionRecord, SmartSpeaker
from repro.speakers.cloud import AvsCloud, GoogleCloud, MiscCloud
from repro.speakers.echo_dot import EchoDot
from repro.speakers.google_home import GoogleHomeMini
from repro.speakers.interaction import (
    EchoTrafficModel,
    GoogleTrafficModel,
    RecordSpec,
    ResponseSegment,
)
from repro.speakers.signatures import (
    AVS_CONNECT_SIGNATURE,
    AVS_DOMAIN,
    GOOGLE_DOMAIN,
    HEARTBEAT_LEN,
    HEARTBEAT_PERIOD,
    OTHER_AMAZON_SIGNATURES,
    PHASE1_FIXED_PATTERNS,
    PHASE1_MARKERS,
    PHASE2_MARKER_PAIR,
)

__all__ = [
    "AVS_CONNECT_SIGNATURE",
    "AVS_DOMAIN",
    "AvsCloud",
    "EchoDot",
    "EchoTrafficModel",
    "GOOGLE_DOMAIN",
    "GoogleCloud",
    "GoogleHomeMini",
    "GoogleTrafficModel",
    "MiscCloud",
    "HEARTBEAT_LEN",
    "HEARTBEAT_PERIOD",
    "InteractionOutcome",
    "InteractionRecord",
    "OTHER_AMAZON_SIGNATURES",
    "PHASE1_FIXED_PATTERNS",
    "PHASE1_MARKERS",
    "PHASE2_MARKER_PAIR",
    "RecordSpec",
    "ResponseSegment",
    "SmartSpeaker",
]
