"""Simulated home-network substrate.

VoiceGuard is a *network-level* defense: it never sees audio, only the
encrypted packets a smart speaker exchanges with its cloud.  This
package provides the network the guard lives in:

* :mod:`repro.net.addresses` / :mod:`repro.net.packet` — endpoints and
  packet metadata (lengths, TCP flags, TLS record types) — exactly the
  observables the paper's recognizer uses.
* :mod:`repro.net.link` — a home LAN with a router/WAN boundary and
  support for interposing a *tap* host inline on a device's traffic
  (the laptop running VoiceGuard).
* :mod:`repro.net.tcp` — a simplified but stateful TCP: handshake,
  sequence/ack numbers, retransmission, keepalive probes, FIN/RST.
* :mod:`repro.net.tls` — TLS record sequence bookkeeping; dropping a
  record mid-stream desynchronizes the sequence and the peer closes the
  session (paper Figure 4, case III).
* :mod:`repro.net.udp` — datagram service used by Google Home Mini's
  QUIC transport.
* :mod:`repro.net.dns` — a resolver the speakers query and the guard
  snoops to learn cloud server IPs.
* :mod:`repro.net.capture` — Wireshark-like packet capture.
* :mod:`repro.net.proxy` — the transparent TCP proxy + UDP forwarder
  with hold/release/drop queues (the paper's Traffic Handler actuator).
"""

from repro.net.addresses import Endpoint, IPv4Address
from repro.net.capture import CaptureRecord, PacketCapture
from repro.net.dns import DnsClient, DnsRecord, DnsServer
from repro.net.link import Host, Network
from repro.net.packet import Packet, Protocol, TcpFlags, TlsRecordType
from repro.net.proxy import ForwarderDecision, TransparentProxy, UdpForwarder
from repro.net.tcp import TcpConnection, TcpState
from repro.net.tls import TlsSession, TlsViolation
from repro.net.udp import UdpFlow

__all__ = [
    "CaptureRecord",
    "DnsClient",
    "DnsRecord",
    "DnsServer",
    "Endpoint",
    "ForwarderDecision",
    "Host",
    "IPv4Address",
    "Network",
    "Packet",
    "PacketCapture",
    "Protocol",
    "TcpConnection",
    "TcpFlags",
    "TcpState",
    "TlsRecordType",
    "TlsSession",
    "TlsViolation",
    "TransparentProxy",
    "UdpFlow",
    "UdpForwarder",
]
