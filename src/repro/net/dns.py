"""DNS service with rotating answers.

The Echo Dot resolves ``avs-alexa-4-na.amazon.com`` a handful of times
and then keeps a long-lived connection; when the connection breaks, it
*sometimes reconnects to a different server IP without a fresh DNS
query* — the observation that forces the paper to fall back on
packet-level connection signatures for server re-identification.  The
:class:`DnsServer` here supports exactly that: domains map to a pool of
addresses with a rotation counter, and clients may be handed an address
out-of-band (modelling cached or pushed endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import NetworkError
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Host
from repro.net.packet import Packet, Protocol

DNS_PORT = 53
_QUERY_LEN = 46
_RESPONSE_LEN = 62


@dataclass
class DnsRecord:
    """A domain and its pool of server addresses."""

    domain: str
    addresses: List[IPv4Address]
    _cursor: int = field(default=0, repr=False)

    def current(self) -> IPv4Address:
        """The address currently served for this domain."""
        return self.addresses[self._cursor % len(self.addresses)]

    def rotate(self) -> IPv4Address:
        """Advance to the next address in the pool and return it."""
        self._cursor = (self._cursor + 1) % len(self.addresses)
        return self.current()


class DnsServer(Host):
    """The home router's DNS resolver, as a host on the LAN."""

    def __init__(self, name: str, ip: IPv4Address) -> None:
        super().__init__(name, ip)
        self._records: Dict[str, DnsRecord] = {}
        self.register_udp_handler(DNS_PORT, self._on_query)
        self.query_count = 0

    def add_record(self, domain: str, addresses: List[IPv4Address]) -> DnsRecord:
        """Register a domain with its address pool."""
        if not addresses:
            raise NetworkError(f"domain {domain!r} needs at least one address")
        record = DnsRecord(domain, list(addresses))
        self._records[domain] = record
        return record

    def record_for(self, domain: str) -> DnsRecord:
        """Look up a domain's record."""
        try:
            return self._records[domain]
        except KeyError:
            raise NetworkError(f"no DNS record for {domain!r}") from None

    def rotate(self, domain: str) -> IPv4Address:
        """Rotate a domain's answer (models cloud-side IP churn)."""
        return self.record_for(domain).rotate()

    def _on_query(self, packet: Packet) -> None:
        domain = packet.meta.get("dns_query")
        if domain is None:
            return
        self.query_count += 1
        record = self._records.get(domain)
        answer = [record.current()] if record is not None else []
        response = Packet(
            src=Endpoint(self.ip, DNS_PORT),
            dst=packet.src,
            protocol=Protocol.UDP,
            payload_len=_RESPONSE_LEN,
            meta={"dns_response": domain, "dns_answers": answer},
        )
        self.send(response)


class DnsClient:
    """Helper for hosts that resolve names.

    Responses are dispatched to the callback registered for the domain;
    a host reuses one client for all of its lookups.
    """

    def __init__(self, host: Host, server: Endpoint, port: int = 5353) -> None:
        self.host = host
        self.server = server
        self._local = Endpoint(host.ip, port)
        self._pending: Dict[str, List[Callable[[List[IPv4Address]], None]]] = {}
        host.register_udp_handler(port, self._on_response)
        self.queries_sent = 0

    def resolve(self, domain: str, callback: Callable[[List[IPv4Address]], None]) -> None:
        """Send a query for ``domain``; ``callback(addresses)`` on answer."""
        self._pending.setdefault(domain, []).append(callback)
        self.queries_sent += 1
        query = Packet(
            src=self._local,
            dst=self.server,
            protocol=Protocol.UDP,
            payload_len=_QUERY_LEN,
            meta={"dns_query": domain},
        )
        self.host.send(query)

    def _on_response(self, packet: Packet) -> None:
        domain = packet.meta.get("dns_response")
        if domain is None:
            return
        waiters = self._pending.pop(domain, [])
        answers = packet.meta.get("dns_answers", [])
        for waiter in waiters:
            waiter(list(answers))
