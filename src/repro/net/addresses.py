"""IP addresses and endpoints.

A tiny validated wrapper is used instead of :mod:`ipaddress` because the
simulation only needs equality, hashing and pretty-printing, and the
wrapper keeps error messages in simulation vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError


def _validate_ipv4(text: str) -> str:
    parts = text.split(".")
    if len(parts) != 4:
        raise NetworkError(f"invalid IPv4 address {text!r}")
    for part in parts:
        if not part.isdigit() or not 0 <= int(part) <= 255 or (part != "0" and part[0] == "0"):
            raise NetworkError(f"invalid IPv4 address {text!r}")
    return text


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A dotted-quad IPv4 address."""

    text: str

    def __post_init__(self) -> None:
        _validate_ipv4(self.text)

    def __str__(self) -> str:
        return self.text

    @property
    def is_private(self) -> bool:
        """True for RFC1918 addresses (the home LAN side)."""
        octets = [int(part) for part in self.text.split(".")]
        if octets[0] == 10:
            return True
        if octets[0] == 192 and octets[1] == 168:
            return True
        return octets[0] == 172 and 16 <= octets[1] <= 31


@dataclass(frozen=True, order=True)
class Endpoint:
    """An (address, port) pair, one side of a flow."""

    ip: IPv4Address
    port: int

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise NetworkError(f"invalid port {self.port!r}")

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


def endpoint(ip: str, port: int) -> Endpoint:
    """Shorthand constructor: ``endpoint("192.168.1.200", 443)``."""
    return Endpoint(IPv4Address(ip), port)
