"""IP addresses and endpoints.

A tiny validated wrapper is used instead of :mod:`ipaddress` because the
simulation only needs equality, hashing and pretty-printing, and the
wrapper keeps error messages in simulation vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError


def _validate_ipv4(text: str) -> str:
    parts = text.split(".")
    if len(parts) != 4:
        raise NetworkError(f"invalid IPv4 address {text!r}")
    for part in parts:
        if not part.isdigit() or not 0 <= int(part) <= 255 or (part != "0" and part[0] == "0"):
            raise NetworkError(f"invalid IPv4 address {text!r}")
    return text


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A dotted-quad IPv4 address.

    Addresses are immutable, so RFC1918 membership and the hash are
    computed once at construction: the network hot path asks
    ``is_private`` for every packet and hashes endpoints for every
    demux lookup, and recomputing either from the string dominated the
    kernel profile.
    """

    text: str

    def __post_init__(self) -> None:
        _validate_ipv4(self.text)
        first, second, _, _ = self.text.split(".")
        first_octet = int(first)
        second_octet = int(second)
        private = (
            first_octet == 10
            or (first_octet == 192 and second_octet == 168)
            or (first_octet == 172 and 16 <= second_octet <= 31)
        )
        object.__setattr__(self, "_is_private", private)
        # Same value the dataclass-generated hash would produce, so set
        # iteration orders (and anything else hash-dependent) are
        # unchanged by the caching.
        object.__setattr__(self, "_hash", hash((self.text,)))

    def __str__(self) -> str:
        return self.text

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_private(self) -> bool:
        """True for RFC1918 addresses (the home LAN side)."""
        return self._is_private


@dataclass(frozen=True, order=True)
class Endpoint:
    """An (address, port) pair, one side of a flow."""

    ip: IPv4Address
    port: int

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise NetworkError(f"invalid port {self.port!r}")
        object.__setattr__(self, "_hash", hash((self.ip, self.port)))

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    def __hash__(self) -> int:
        return self._hash


def endpoint(ip: str, port: int) -> Endpoint:
    """Shorthand constructor: ``endpoint("192.168.1.200", 443)``."""
    return Endpoint(IPv4Address(ip), port)
