"""TLS record-layer bookkeeping.

Commercial smart-speaker traffic is end-to-end encrypted and mutually
authenticated, which the paper leans on twice:

* the *attacker* cannot forge or modify packets to evade the guard, and
* the *guard itself* cannot splice content: if it drops held records and
  later lets the stream continue, the receiver sees a gap in the record
  sequence and terminates the session (Figure 4, case III).

:class:`TlsSession` implements exactly that receiver-side check.  Both
cloud-server models feed received application-data records through one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError


@dataclass
class TlsViolation:
    """Details of a record-sequence desynchronization."""

    expected_seq: int
    received_seq: int
    time: float

    def __str__(self) -> str:
        return (
            f"TLS record sequence mismatch at t={self.time:.3f}: "
            f"expected {self.expected_seq}, got {self.received_seq}"
        )


class TlsSession:
    """Sender/receiver record-sequence state for one TLS connection.

    The sender side stamps outgoing application-data records with
    monotonically increasing sequence numbers via :meth:`next_send_seq`.
    The receiver side verifies continuity via :meth:`accept_record`,
    which returns a :class:`TlsViolation` on a gap (the caller then
    closes the connection, as a real TLS stack would after a failed
    record MAC).
    """

    def __init__(self) -> None:
        self._send_seq = 0
        self._recv_expected = 0
        self.violation: Optional[TlsViolation] = None

    @property
    def records_sent(self) -> int:
        """Records stamped by the sender side."""
        return self._send_seq

    @property
    def records_received(self) -> int:
        """In-sequence records accepted so far."""
        return self._recv_expected

    def next_send_seq(self) -> int:
        """Allocate the sequence number for the next outgoing record."""
        seq = self._send_seq
        self._send_seq += 1
        return seq

    def accept_record(self, record_seq: Optional[int], now: float) -> Optional[TlsViolation]:
        """Validate an incoming application-data record.

        Returns ``None`` when the record is in sequence, otherwise a
        :class:`TlsViolation`.  After a violation the session is dead
        and further calls raise.
        """
        if self.violation is not None:
            raise NetworkError("record received on a desynchronized TLS session")
        if record_seq is None:
            raise NetworkError("application-data record without a record sequence number")
        if record_seq != self._recv_expected:
            self.violation = TlsViolation(
                expected_seq=self._recv_expected, received_seq=record_seq, time=now
            )
            return self.violation
        self._recv_expected += 1
        return None
