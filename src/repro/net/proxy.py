"""Transparent TCP proxy and UDP forwarder (the Traffic Handler's actuator).

The proxy is installed inline on the smart speaker's IP (paper Figure 2:
the laptop "sits in between the smart speaker and the home WiFi
router").  For every TCP connection the speaker opens it terminates the
client side — impersonating the cloud server — and opens its own spoofed
upstream connection, then splices records between the two.  Because the
speaker's segments are ACKed locally, the proxy can *hold* client
records for dozens of seconds without retransmissions or keepalive
timeouts, then either *release* them upstream (legitimate command) or
*discard* them (malicious command).  Discarding desynchronizes the TLS
record sequence, so the cloud closes the session the next time the
speaker sends a record — exactly the paper's Figure 4 case III.

Google Home Mini may use QUIC over UDP; the :class:`UdpForwarder` holds
and forwards datagrams with the same policy interface.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.link import Network, TapHost
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.tcp import TcpConnection, TcpStack, TcpTuning
from repro.obs.tracer import NULL_SPAN, Observability


class ForwarderDecision(enum.Enum):
    """Policy verdict for one client record/datagram.

    ``DROP`` matters for UDP/QUIC: there is no record-sequence desync
    to kill a blocked session, so the forwarder must keep discarding a
    blocked flow's datagrams (QUIC would otherwise retransmit the
    command right past the guard).
    """

    FORWARD = "forward"
    HOLD = "hold"
    DROP = "drop"


# Flow ids are allocated per-proxy (see TransparentProxy._flow_ids) so
# repeated in-process runs are deterministic; TCP flows and the UDP
# forwarder's flows share the owning proxy's counter, keeping ids unique
# within one guard (the recognizer keys its per-flow state on them).


class HoldBudget:
    """Global byte budget over every hold queue the proxy owns.

    With N speakers' commands in flight concurrently the guard parks
    records for all of them at once; the budget bounds that memory.  A
    charge that would exceed ``limit_bytes`` is refused, which triggers
    the proxy's overflow policy (see ``TransparentProxy.on_hold_overflow``).
    ``limit_bytes=0`` means unlimited: every charge succeeds and only
    the gauges move, so the default is byte-identical to having no
    budget at all.
    """

    def __init__(self, limit_bytes: int = 0, fail_open: bool = False,
                 obs: Optional[Observability] = None) -> None:
        self.limit_bytes = limit_bytes
        self.fail_open = fail_open
        self.held_bytes = 0
        self.held_records = 0
        self.overflows = 0
        metrics = (obs or Observability()).metrics.scope("proxy")
        self._g_bytes = metrics.gauge("held_bytes")
        self._g_records = metrics.gauge("held_records")
        self._m_overflows = metrics.counter("hold_overflows")

    def try_charge(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` for one held record; False on overflow.

        A charge landing exactly on the limit still fits: the budget is
        an inclusive bound on bytes held, not a high-water trigger.
        """
        if self.limit_bytes and self.held_bytes + nbytes > self.limit_bytes:
            self.overflows += 1
            self._m_overflows.inc()
            return False
        self.held_bytes += nbytes
        self.held_records += 1
        self._g_bytes.set(float(self.held_bytes))
        self._g_records.set(float(self.held_records))
        return True

    def credit(self, records: List[HeldRecord]) -> None:
        """Return the bytes of released/discarded records to the pool."""
        if not records:
            return
        self.held_bytes -= sum(record.payload_len for record in records)
        self.held_records -= len(records)
        self._g_bytes.set(float(self.held_bytes))
        self._g_records.set(float(self.held_records))


@dataclass
class HeldRecord:
    """A client record parked in the hold queue."""

    payload_len: int
    tls_type: object
    tls_record_seq: Optional[int]
    meta: dict
    held_at: float


@dataclass
class ProxiedFlow:
    """One spliced client<->server conversation.

    ``client`` is the speaker-side endpoint, ``server`` the cloud-side
    endpoint the speaker believed it was talking to.
    """

    flow_id: int
    protocol: Protocol
    client: Endpoint
    server: Endpoint
    downstream: Optional[TcpConnection] = None
    upstream: Optional[TcpConnection] = None
    held: List[HeldRecord] = field(default_factory=list)
    awaiting_upstream: List[HeldRecord] = field(default_factory=list)
    records_forwarded: int = 0
    records_discarded: int = 0
    closed: bool = False
    close_reason: Optional[str] = None
    span: object = NULL_SPAN

    @property
    def holding(self) -> bool:
        """Whether records are currently parked."""
        return bool(self.held)


# Signature of the per-record policy: (flow, packet) -> decision.
RecordPolicy = Callable[[ProxiedFlow, Packet], ForwarderDecision]
# A record shim interposes between the tap and the record policy: it
# receives the observed packet plus the next stage of the chain and
# returns the decision for the *real* record.  Shims may invoke the
# next stage extra times with phantom packets (observations only — no
# record is forwarded or held for them); traffic-morphing adversaries
# (repro.attacks.morphing) use this to distort what the recognizer
# sees without touching the actual TCP/TLS byte stream.
RecordShim = Callable[[ProxiedFlow, Packet, RecordPolicy], ForwarderDecision]
FlowObserver = Callable[[ProxiedFlow], None]
SnoopObserver = Callable[[Packet], None]
# Budget-overflow hook: resolves the flow's pending window by policy and
# returns what to do with the record that could not be held.
OverflowPolicy = Callable[[ProxiedFlow], ForwarderDecision]


class TransparentProxy(TapHost):
    """The guard laptop's inline packet plane.

    Parameters
    ----------
    name, ip:
        Host identity of the guard laptop on the LAN.
    proxied_ports:
        TCP destination ports to terminate (443 for both speakers).
        Traffic to other ports (e.g. DNS/53 UDP) is bridged untouched
        but still reported to ``snoop`` observers.
    """

    def __init__(
        self,
        name: str,
        ip: IPv4Address,
        proxied_ports: Tuple[int, ...] = (443,),
        tuning: Optional[TcpTuning] = None,
        obs: Optional[Observability] = None,
        hold_budget: Optional[HoldBudget] = None,
    ) -> None:
        super().__init__(name, ip)
        self.stack = TcpStack(self)
        self._tuning = tuning or TcpTuning()
        obs = obs or Observability()
        self.tracer = obs.tracer
        metrics = obs.metrics.scope("proxy")
        self._m_flows = metrics.counter("flows_opened")
        self._m_forwarded = metrics.counter("records_forwarded")
        self._m_held = metrics.counter("records_held")
        self._m_discarded = metrics.counter("records_discarded")
        self.proxied_ports = tuple(proxied_ports)
        self.hold_budget = hold_budget or HoldBudget(obs=obs)
        self.on_hold_overflow: Optional[OverflowPolicy] = None
        self.record_policy: Optional[RecordPolicy] = None
        self._record_shims: List[RecordShim] = []
        self.on_flow_opened: Optional[FlowObserver] = None
        self.on_flow_closed: Optional[FlowObserver] = None
        self._snoopers: List[SnoopObserver] = []
        self._flows_by_downstream: Dict[Tuple[Endpoint, Endpoint], ProxiedFlow] = {}
        self.flows: List[ProxiedFlow] = []
        self.udp_forwarder: Optional["UdpForwarder"] = None
        self._flow_ids = itertools.count(1)
        for port in self.proxied_ports:
            self.stack.listen(port, self._accept_downstream, transparent=True, tuning=self._tuning)

    # -- installation ---------------------------------------------------
    def install(self, network: Network, covered_ip: IPv4Address) -> None:
        """Attach to ``network`` and interpose on ``covered_ip``."""
        if self.network is None:
            network.attach(self)
        network.install_tap(covered_ip, self)

    def add_snooper(self, snooper: SnoopObserver) -> None:
        """Observe every tapped packet (the guard snoops DNS this way)."""
        self._snoopers.append(snooper)

    def install_record_shim(self, shim: RecordShim) -> None:
        """Interpose ``shim`` between the tap and the record policy.

        Shims stack: the most recently installed one runs first and
        receives the rest of the chain (ending at ``record_policy``) as
        its continuation.  With no shims installed this path is exactly
        the old direct policy call, byte for byte.
        """
        self._record_shims.append(shim)

    def _policy_decision(self, flow: ProxiedFlow, packet: Packet) -> ForwarderDecision:
        """Run the shim chain, then the record policy."""
        return self._run_policy_chain(len(self._record_shims), flow, packet)

    def _run_policy_chain(self, depth: int, flow: ProxiedFlow,
                          packet: Packet) -> ForwarderDecision:
        if depth == 0:
            if self.record_policy is None:
                return ForwarderDecision.FORWARD
            return self.record_policy(flow, packet)
        shim = self._record_shims[depth - 1]
        return shim(flow, packet,
                    partial(self._run_policy_chain, depth - 1))

    # -- tap entry point --------------------------------------------------
    def intercept(self, packet: Packet) -> None:
        """Tap entry point: demux to the stack, forwarder, or bridge."""
        for snooper in self._snoopers:
            snooper(packet)
        if packet.protocol is Protocol.TCP:
            if self._belongs_to_proxy(packet):
                self.stack.receive(packet)
                return
            if (
                TcpFlags.SYN in packet.flags
                and TcpFlags.ACK not in packet.flags
                and packet.dst.port in self.proxied_ports
            ):
                self.stack.receive(packet)
                return
            self.bridge(packet)
            return
        if self.udp_forwarder is not None and self.udp_forwarder.claims(packet):
            self.udp_forwarder.handle(packet)
            return
        self.bridge(packet)

    def _belongs_to_proxy(self, packet: Packet) -> bool:
        return (packet.dst, packet.src) in self.stack._connections

    # -- downstream (speaker-side) ---------------------------------------
    def _accept_downstream(self, downstream: TcpConnection) -> None:
        flow = ProxiedFlow(
            flow_id=next(self._flow_ids),
            protocol=Protocol.TCP,
            client=downstream.remote,
            server=downstream.local,
        )
        flow.downstream = downstream
        self._flows_by_downstream[downstream.four_tuple] = flow
        self.flows.append(flow)
        self._m_flows.inc()
        flow.span = self.tracer.begin(
            "proxy.flow", flow_id=flow.flow_id, protocol=flow.protocol.value,
            client=str(flow.client), server=str(flow.server),
        )
        # ``functools.partial`` over bound methods rather than lambdas:
        # these callbacks live on connections that outlast this call, and
        # ``copy.deepcopy`` recurses into a partial's function and args
        # (rebinding them into the copied object graph) while it treats a
        # lambda as an atom shared with the original — which would make a
        # snapshot-restored world call back into the template's flows
        # (see repro.experiments.pool).
        downstream.on_record = partial(self._on_client_record, flow)
        downstream.on_close = partial(self._on_downstream_close, flow)
        downstream.on_established = partial(self._open_upstream, flow)

    def _open_upstream(self, flow: ProxiedFlow, _conn: Optional[TcpConnection] = None) -> None:
        upstream = self.stack.connect(
            flow.server, local_ip=flow.client.ip, tuning=self._tuning
        )
        flow.upstream = upstream
        upstream.on_record = partial(self._on_server_record, flow)
        upstream.on_close = partial(self._on_upstream_close, flow)
        upstream.on_established = partial(self._flush_awaiting, flow)
        if self.on_flow_opened:
            self.on_flow_opened(flow)

    def _on_client_record(self, flow: ProxiedFlow, conn: TcpConnection,
                          packet: Packet) -> None:
        decision = self._policy_decision(flow, packet)
        if decision is ForwarderDecision.DROP:
            flow.records_discarded += 1
            self._m_discarded.inc()
            return
        record = HeldRecord(
            payload_len=packet.payload_len,
            tls_type=packet.tls_type,
            tls_record_seq=packet.tls_record_seq,
            meta=dict(packet.meta),
            held_at=self.network.sim.now,
        )
        if decision is ForwarderDecision.HOLD:
            if not self.hold_budget.try_charge(record.payload_len):
                self._overflow_record(flow, record)
                return
            flow.held.append(record)
            self._m_held.inc()
            return
        self._send_upstream(flow, record)

    def _overflow_record(self, flow: ProxiedFlow, record: HeldRecord) -> None:
        """The budget refused a hold: shed load per the overflow policy.

        The policy hook first resolves the flow's pending window (so its
        bytes come back to the pool), then tells us what the unheld
        record's fate is: forwarded past the guard (fail-open) or dropped
        (fail-closed).
        """
        if self.on_hold_overflow is not None:
            verdict = self.on_hold_overflow(flow)
        else:
            verdict = (ForwarderDecision.FORWARD if self.hold_budget.fail_open
                       else ForwarderDecision.DROP)
        if verdict is ForwarderDecision.FORWARD:
            self._send_upstream(flow, record)
        else:
            flow.records_discarded += 1
            self._m_discarded.inc()

    def _send_upstream(self, flow: ProxiedFlow, record: HeldRecord) -> None:
        upstream = flow.upstream
        if upstream is None or not upstream.is_established:
            flow.awaiting_upstream.append(record)
            return
        upstream.send_record(
            record.payload_len,
            record.tls_type,
            tls_record_seq=record.tls_record_seq,
            meta=record.meta,
        )
        flow.records_forwarded += 1
        self._m_forwarded.inc()

    def _flush_awaiting(self, flow: ProxiedFlow,
                        _conn: Optional[TcpConnection] = None) -> None:
        pending, flow.awaiting_upstream = flow.awaiting_upstream, []
        for record in pending:
            self._send_upstream(flow, record)

    # -- hold-queue control (called by the Traffic Handler) ---------------
    def release_held(self, flow: ProxiedFlow) -> int:
        """Forward all held records upstream in order; returns the count."""
        held, flow.held = flow.held, []
        self.hold_budget.credit(held)
        for record in held:
            self._send_upstream(flow, record)
        return len(held)

    def discard_held(self, flow: ProxiedFlow) -> int:
        """Drop all held records; returns the count.

        Subsequent client records continue to be forwarded; the cloud
        will observe the TLS record-sequence gap and close the session.
        """
        held, flow.held = flow.held, []
        self.hold_budget.credit(held)
        flow.records_discarded += len(held)
        self._m_discarded.inc(len(held))
        return len(held)

    # -- upstream (cloud-side) ---------------------------------------------
    def _on_server_record(self, flow: ProxiedFlow, conn: TcpConnection,
                          packet: Packet) -> None:
        downstream = flow.downstream
        if downstream is None or not downstream.is_established:
            return
        downstream.send_record(
            packet.payload_len,
            packet.tls_type,
            tls_record_seq=packet.tls_record_seq,
            meta=dict(packet.meta),
        )

    # -- teardown propagation ---------------------------------------------
    def _on_downstream_close(self, flow: ProxiedFlow, conn: TcpConnection,
                             reason: str) -> None:
        self._flows_by_downstream.pop(
            flow.downstream.four_tuple if flow.downstream else None, None
        )
        if flow.upstream is not None and flow.upstream.is_established:
            if reason == "rst":
                flow.upstream.abort("peer-rst")
            else:
                flow.upstream.close()
        self._finish_flow(flow, reason)

    def _on_upstream_close(self, flow: ProxiedFlow, conn: TcpConnection,
                           reason: str) -> None:
        if flow.downstream is not None and flow.downstream.is_established:
            if reason == "rst":
                flow.downstream.abort("peer-rst")
            else:
                flow.downstream.close()
        self._finish_flow(flow, reason)

    def _finish_flow(self, flow: ProxiedFlow, reason: str) -> None:
        if flow.closed:
            return
        flow.closed = True
        flow.close_reason = reason
        flow.span.finish(reason=reason, forwarded=flow.records_forwarded,
                         discarded=flow.records_discarded)
        if self.on_flow_closed:
            self.on_flow_closed(flow)

    # -- stats --------------------------------------------------------------
    @property
    def open_flow_count(self) -> int:
        """Flows not yet closed."""
        return sum(1 for flow in self.flows if not flow.closed)


class UdpForwarder:
    """Hold/forward policy for the speaker's UDP (QUIC) datagrams.

    Client→server datagrams pass through the record policy; server→client
    datagrams are always forwarded immediately.
    """

    def __init__(self, proxy: TransparentProxy, covered_ip: IPv4Address, ports: Tuple[int, ...] = (443,)) -> None:
        self.proxy = proxy
        self.covered_ips = {covered_ip}
        self.ports = tuple(ports)
        self._flows: Dict[Tuple[Endpoint, Endpoint], ProxiedFlow] = {}
        proxy.udp_forwarder = self

    def add_covered(self, ip: IPv4Address) -> None:
        """Also forward for another speaker IP (multi-speaker homes)."""
        self.covered_ips.add(ip)

    def claims(self, packet: Packet) -> bool:
        """Whether this datagram belongs to the forwarder."""
        if packet.protocol is not Protocol.UDP:
            return False
        if packet.src.ip in self.covered_ips and packet.dst.port in self.ports:
            return True
        return packet.dst.ip in self.covered_ips and packet.src.port in self.ports

    def handle(self, packet: Packet) -> None:
        """Process one claimed datagram."""
        if packet.src.ip in self.covered_ips:
            self._handle_client(packet)
        else:
            self.proxy.bridge(packet)

    def _handle_client(self, packet: Packet) -> None:
        key = (packet.src, packet.dst)
        flow = self._flows.get(key)
        if flow is None:
            flow = ProxiedFlow(
                flow_id=next(self.proxy._flow_ids),
                protocol=Protocol.UDP,
                client=packet.src,
                server=packet.dst,
            )
            self._flows[key] = flow
            self.proxy.flows.append(flow)
            self.proxy._m_flows.inc()
            flow.span = self.proxy.tracer.begin(
                "proxy.flow", flow_id=flow.flow_id, protocol=flow.protocol.value,
                client=str(flow.client), server=str(flow.server),
            )
            if self.proxy.on_flow_opened:
                self.proxy.on_flow_opened(flow)
        decision = self.proxy._policy_decision(flow, packet)
        if decision is ForwarderDecision.DROP:
            flow.records_discarded += 1
            self.proxy._m_discarded.inc()
            return
        record = HeldRecord(
            payload_len=packet.payload_len,
            tls_type=packet.tls_type,
            tls_record_seq=packet.tls_record_seq,
            meta=dict(packet.meta),
            held_at=self.proxy.network.sim.now,
        )
        if decision is ForwarderDecision.HOLD:
            if not self.proxy.hold_budget.try_charge(record.payload_len):
                self._overflow_datagram(flow, record)
                return
            flow.held.append(record)
            self.proxy._m_held.inc()
        else:
            self._forward(flow, record)

    def _overflow_datagram(self, flow: ProxiedFlow, record: HeldRecord) -> None:
        """Budget refused the hold: shed per the proxy's overflow policy."""
        proxy = self.proxy
        if proxy.on_hold_overflow is not None:
            verdict = proxy.on_hold_overflow(flow)
        else:
            verdict = (ForwarderDecision.FORWARD if proxy.hold_budget.fail_open
                       else ForwarderDecision.DROP)
        if verdict is ForwarderDecision.FORWARD:
            self._forward(flow, record)
        else:
            flow.records_discarded += 1
            proxy._m_discarded.inc()

    def _forward(self, flow: ProxiedFlow, record: HeldRecord) -> None:
        datagram = Packet(
            src=flow.client,
            dst=flow.server,
            protocol=Protocol.UDP,
            payload_len=record.payload_len,
            tls_type=record.tls_type,
            tls_record_seq=record.tls_record_seq,
            meta=dict(record.meta),
        )
        self.proxy.send(datagram)
        flow.records_forwarded += 1
        self.proxy._m_forwarded.inc()

    def release_held(self, flow: ProxiedFlow) -> int:
        """Forward all held datagrams in order."""
        if flow.protocol is not Protocol.UDP:
            raise NetworkError("release_held on a non-UDP flow; use the proxy")
        held, flow.held = flow.held, []
        self.proxy.hold_budget.credit(held)
        for record in held:
            self._forward(flow, record)
        return len(held)

    def discard_held(self, flow: ProxiedFlow) -> int:
        """Drop all held datagrams."""
        held, flow.held = flow.held, []
        self.proxy.hold_budget.credit(held)
        flow.records_discarded += len(held)
        self.proxy._m_discarded.inc(len(held))
        return len(held)
