"""Packet metadata.

The reproduction models packets at exactly the granularity VoiceGuard
observes in the real system: timestamps, endpoints, transport protocol,
TCP flags, *payload length in bytes*, and the (cleartext) TLS record
type from the record header.  Actual payload bytes are never modelled —
the traffic between speaker and cloud is encrypted and the paper's
recognizer works on lengths alone.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional

from repro.errors import NetworkError
from repro.net.addresses import Endpoint


class Protocol(enum.Enum):
    """Transport protocol of a packet."""

    TCP = "tcp"
    UDP = "udp"


class TcpFlags(enum.Flag):
    """Subset of TCP flags the simulation distinguishes."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()
    PSH = enum.auto()
    KEEPALIVE = enum.auto()  # modelled as its own flag for observability


class TlsRecordType(enum.Enum):
    """TLS record content type, readable in the unencrypted record header.

    The paper's packet-level signatures only count records labelled
    ``APPLICATION_DATA`` ("we only consider lengths of a subset of
    packets that are labeled as 'Application Data' in the TLS record
    header", Section IV-B).
    """

    NONE = "none"  # no TLS record in this segment (pure ACK, keepalive...)
    HANDSHAKE = "handshake"
    CHANGE_CIPHER_SPEC = "change_cipher_spec"
    APPLICATION_DATA = "application_data"
    ALERT = "alert"


_packet_ids = itertools.count(1)


def next_packet_number() -> int:
    """The next packet sequence number (display/debug identity only)."""
    return next(_packet_ids)


def peek_packet_number() -> int:
    """The number the *next* packet will get, without consuming it.

    Snapshot support (:mod:`repro.experiments.pool`): a restored world
    must resume numbering exactly where the template's build left off,
    so the pool records this value at build time and feeds it back to
    :func:`reset_packet_numbers` before each simulated home.
    """
    global _packet_ids
    value = next(_packet_ids)
    _packet_ids = itertools.count(value)
    return value


def reset_packet_numbers(start: int = 1) -> None:
    """Restart packet numbering.

    Packet numbers are cosmetic (they appear in :meth:`Packet.brief`),
    but a module-global counter leaks state across in-process runs: the
    second run of an otherwise identical experiment numbers its packets
    differently.  :class:`repro.home.environment.HomeEnvironment` calls
    this at construction so every run starts from 1 and repeated runs in
    one process are deterministic (which the parallel engine's cache
    keys assume).
    """
    global _packet_ids
    _packet_ids = itertools.count(start)


class Packet:
    """One simulated packet.

    ``payload_len`` is the application payload in bytes (what Wireshark
    would show as the TLS record length for application-data segments).
    ``tls_record_seq`` carries the TLS record sequence number for
    application-data records so the receiving endpoint can detect the
    desynchronization caused by dropped records.

    A plain ``__slots__`` class rather than a dataclass: tens of
    thousands of packets are built per scenario, and skipping the
    per-instance ``__dict__`` plus the dataclass plumbing measurably
    trims the per-packet cost.  Equality still compares all fields and
    packets stay unhashable, matching the previous dataclass semantics.
    """

    __slots__ = (
        "src",
        "dst",
        "protocol",
        "payload_len",
        "flags",
        "seq",
        "ack",
        "tls_type",
        "tls_record_seq",
        "meta",
        "number",
        "send_time",
    )

    def __init__(
        self,
        src: Endpoint,
        dst: Endpoint,
        protocol: Protocol,
        payload_len: int = 0,
        flags: TcpFlags = TcpFlags.NONE,
        seq: int = 0,
        ack: int = 0,
        tls_type: TlsRecordType = TlsRecordType.NONE,
        tls_record_seq: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        number: Optional[int] = None,
        send_time: float = 0.0,
    ) -> None:
        if payload_len < 0:
            raise NetworkError(f"negative payload length {payload_len!r}")
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload_len = payload_len
        self.flags = flags
        self.seq = seq
        self.ack = ack
        self.tls_type = tls_type
        self.tls_record_seq = tls_record_seq
        self.meta = {} if meta is None else meta
        self.number = next_packet_number() if number is None else number
        self.send_time = send_time

    def _astuple(self) -> tuple:
        return (
            self.src,
            self.dst,
            self.protocol,
            self.payload_len,
            self.flags,
            self.seq,
            self.ack,
            self.tls_type,
            self.tls_record_seq,
            self.meta,
            self.number,
            self.send_time,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Packet:
            return self._astuple() == other._astuple()
        return NotImplemented

    # Same as the previous ``@dataclass`` (eq=True): defining __eq__
    # leaves packets unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(src={self.src!r}, dst={self.dst!r}, protocol={self.protocol!r}, "
            f"payload_len={self.payload_len!r}, flags={self.flags!r}, seq={self.seq!r}, "
            f"ack={self.ack!r}, tls_type={self.tls_type!r}, "
            f"tls_record_seq={self.tls_record_seq!r}, meta={self.meta!r}, "
            f"number={self.number!r}, send_time={self.send_time!r})"
        )

    @property
    def is_application_data(self) -> bool:
        """True when the packet carries a TLS application-data record."""
        return self.tls_type is TlsRecordType.APPLICATION_DATA and self.payload_len > 0

    def brief(self) -> str:
        """Compact human-readable one-liner (used in figure renderings)."""
        flag_names = [flag.name for flag in TcpFlags if flag is not TcpFlags.NONE and flag in self.flags]
        flag_text = ",".join(flag_names) if flag_names else "-"
        return (
            f"#{self.number} t={self.send_time:.3f} {self.src} -> {self.dst} "
            f"{self.protocol.value} len={self.payload_len} [{flag_text}] {self.tls_type.value}"
        )
