"""Simplified but stateful TCP.

The model keeps exactly the machinery the paper's Traffic Handler
depends on:

* a three-way handshake, so connection establishment is observable as
  packets (the AVS *connection signature* rides on the first data
  segments after the handshake);
* sequence/acknowledgement numbers with retransmission and a bounded
  number of retries, so a middlebox that silently drops packets (the
  firewall baseline) kills the connection, while one that ACKs locally
  (the transparent proxy) keeps it alive for dozens of seconds;
* keepalive probes, which the proxy must answer during a hold;
* FIN/RST teardown, so a TLS-level violation can close the session and
  the speaker can observably reconnect.

Endpoints communicate only through packets on the network — there is no
shared connection object — which is what allows a transparent proxy to
terminate one side and impersonate the other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConnectionClosedError, NetworkError
from repro.net.addresses import Endpoint
from repro.net.link import Host
from repro.net.packet import Packet, Protocol, TcpFlags, TlsRecordType
from repro.sim import compat
from repro.sim.process import DeadlineTimer

# Integer flag masks and pre-built combinations: ``enum.Flag``'s
# ``__contains__`` / ``__or__`` dominate the per-segment profile, while
# one ``.value`` read plus int ``&`` per check does not.
_SYN = TcpFlags.SYN.value
_ACK = TcpFlags.ACK.value
_FIN = TcpFlags.FIN.value
_RST = TcpFlags.RST.value
_KEEPALIVE = TcpFlags.KEEPALIVE.value
_SYN_ACK = TcpFlags.SYN | TcpFlags.ACK
_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK
_FIN_ACK = TcpFlags.FIN | TcpFlags.ACK
_KEEPALIVE_ACK = TcpFlags.KEEPALIVE | TcpFlags.ACK


class TcpState(enum.Enum):
    """Connection states (simplified TCP)."""
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    CLOSE_WAIT = "close_wait"


class _Unacked:
    """A sent-but-unacknowledged segment awaiting ACK or retransmit.

    Instances never escape their connection, so they are recycled
    through a small free list (:func:`_unacked_acquire` /
    :func:`_unacked_release`) instead of being allocated per data
    segment.
    """

    __slots__ = ("seq_end", "packet", "retries")

    def __init__(self, seq_end: int = 0, packet: Optional[Packet] = None, retries: int = 0) -> None:
        self.seq_end = seq_end
        self.packet = packet
        self.retries = retries


_UNACKED_POOL: List[_Unacked] = []
_UNACKED_POOL_MAX = 256


def _unacked_acquire(seq_end: int, packet: Packet) -> _Unacked:
    if _UNACKED_POOL:
        segment = _UNACKED_POOL.pop()
        segment.seq_end = seq_end
        segment.packet = packet
        segment.retries = 0
        return segment
    return _Unacked(seq_end, packet)


def _unacked_release(segment: _Unacked) -> None:
    if len(_UNACKED_POOL) < _UNACKED_POOL_MAX:
        segment.packet = None  # do not retain the packet via the pool
        _UNACKED_POOL.append(segment)


@dataclass
class TcpTuning:
    """Timer knobs; defaults approximate consumer-device stacks."""

    rto: float = 1.0
    max_retries: int = 5
    keepalive_idle: float = 45.0
    keepalive_interval: float = 5.0
    keepalive_probes: int = 3
    delayed_ack: float = 0.0005


class TcpConnection:
    """One side of a TCP connection.

    Application hooks:

    ``on_established(conn)``
        fired when the handshake completes,
    ``on_record(conn, packet)``
        fired for every received data segment,
    ``on_close(conn, reason)``
        fired once when the connection leaves ESTABLISHED for good.
        ``reason`` is one of ``"fin"``, ``"rst"``, ``"timeout"``,
        ``"local"``.
    """

    def __init__(
        self,
        stack: "TcpStack",
        local: Endpoint,
        remote: Endpoint,
        tuning: Optional[TcpTuning] = None,
    ) -> None:
        self.stack = stack
        self.local = local
        self.remote = remote
        self.tuning = tuning or TcpTuning()
        self.state = TcpState.CLOSED
        self.on_established: Optional[Callable[[TcpConnection], None]] = None
        self.on_record: Optional[Callable[[TcpConnection, Packet], None]] = None
        self.on_close: Optional[Callable[[TcpConnection, str], None]] = None

        self.snd_next = 0
        self.rcv_next = 0
        self._unacked: List[_Unacked] = []
        self._out_of_order: dict = {}  # seq -> data packet awaiting gap fill
        self._recovering = False
        network = stack.host.network
        self._sim = network.sim if network is not None else None
        # Fast kernel: a deadline-bumping RTO timer (zero heap traffic
        # per advancing ACK).  Legacy: the pre-PR cancel + re-push
        # handle churn, kept for the benchmark baseline.
        self._legacy = compat.legacy_kernel_enabled()
        self._rto_timer: Optional[DeadlineTimer] = None
        self._rto_handle = None
        self._keepalive_timer: Optional[DeadlineTimer] = None
        self._keepalive_handle = None
        self._probes_sent = 0
        self._last_rx_time = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.close_reason: Optional[str] = None

    # -- identity -------------------------------------------------------
    @property
    def sim(self):
        """The simulator this connection runs on."""
        sim = self._sim
        if sim is None:
            sim = self._sim = self.stack.host.network.sim
        return sim

    @property
    def four_tuple(self) -> Tuple[Endpoint, Endpoint]:
        """(local, remote) endpoints identifying the connection."""
        return (self.local, self.remote)

    @property
    def is_established(self) -> bool:
        """Whether data can currently be sent."""
        return self.state is TcpState.ESTABLISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TcpConnection({self.local} <-> {self.remote}, {self.state.value})"

    # -- opening --------------------------------------------------------
    def open_active(self) -> None:
        """Client side: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise NetworkError(f"cannot open connection in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._transmit(self._make_packet(flags=TcpFlags.SYN))
        self._arm_rto()

    # -- sending --------------------------------------------------------
    def send_record(
        self,
        payload_len: int,
        tls_type: TlsRecordType = TlsRecordType.APPLICATION_DATA,
        tls_record_seq: Optional[int] = None,
        meta: Optional[dict] = None,
    ) -> Packet:
        """Send one TLS record as a data segment."""
        if self.state is not TcpState.ESTABLISHED:
            raise ConnectionClosedError(
                f"send on {self.local}->{self.remote} in state {self.state.value}"
            )
        packet = self._make_packet(
            flags=_PSH_ACK,
            payload_len=payload_len,
            tls_type=tls_type,
            tls_record_seq=tls_record_seq,
        )
        if meta:
            packet.meta.update(meta)
        self.snd_next += payload_len
        self.bytes_sent += payload_len
        self._unacked.append(_unacked_acquire(self.snd_next, packet))
        self._transmit(packet)
        self._arm_rto()
        return packet

    def close(self) -> None:
        """Orderly local close (FIN)."""
        if self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT, TcpState.SYN_RCVD):
            self._transmit(self._make_packet(flags=_FIN_ACK))
            previous = self.state
            self.state = TcpState.FIN_WAIT
            if previous is TcpState.CLOSE_WAIT:
                self._finish("fin")

    def abort(self, reason: str = "local") -> None:
        """Send RST and drop all state immediately."""
        if self.state not in (TcpState.CLOSED,):
            try:
                self._transmit(self._make_packet(flags=TcpFlags.RST))
            finally:
                self._finish(reason)

    # -- receiving ------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        """Process one inbound packet for this connection."""
        self._last_rx_time = now = self.sim._clock._now
        self._probes_sent = 0
        # Bump the idle deadline instead of letting the keepalive wake
        # up every <idle> seconds just to discover traffic arrived and
        # re-arm — on a heartbeating connection that wander loop is one
        # pure-bookkeeping callback per heartbeat.  Bumping a deadline
        # is a float store (no heap traffic, see DeadlineTimer), and
        # the callback now only runs when the link is genuinely idle.
        timer = self._keepalive_timer
        if timer is not None and timer._deadline is not None:
            timer.schedule_at(now + self.tuning.keepalive_idle)
        flag_bits = packet.flags.value

        if flag_bits & _RST:
            self._finish("rst")
            return

        if self.state is TcpState.SYN_SENT:
            if flag_bits & _SYN and flag_bits & _ACK:
                self.state = TcpState.ESTABLISHED
                self._cancel_rto()
                self._clear_unacked()
                self._transmit(self._make_packet(flags=TcpFlags.ACK))
                self._arm_keepalive()
                if self.on_established:
                    self.on_established(self)
            return

        if self.state is TcpState.SYN_RCVD:
            if flag_bits & _ACK:
                self.state = TcpState.ESTABLISHED
                self._arm_keepalive()
                if self.on_established:
                    self.on_established(self)
            # fall through: the ACK may carry data in theory; ours never do
            if packet.payload_len == 0:
                return

        if flag_bits & _KEEPALIVE:
            # Answer the probe with a bare ACK.
            self._transmit(self._make_packet(flags=TcpFlags.ACK))
            return

        if flag_bits & _ACK:
            self._process_ack(packet.ack)

        if packet.payload_len > 0:
            self._receive_data(packet)

        if flag_bits & _FIN:
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
                self._transmit(self._make_packet(flags=TcpFlags.ACK))
                # Consumer devices close promptly in response.
                self._transmit(self._make_packet(flags=_FIN_ACK))
                self._finish("fin")
            elif self.state is TcpState.FIN_WAIT:
                self._transmit(self._make_packet(flags=TcpFlags.ACK))
                self._finish("fin")

    # -- internals ------------------------------------------------------
    def _make_packet(
        self,
        flags: TcpFlags,
        payload_len: int = 0,
        tls_type: TlsRecordType = TlsRecordType.NONE,
        tls_record_seq: Optional[int] = None,
    ) -> Packet:
        return Packet(
            src=self.local,
            dst=self.remote,
            protocol=Protocol.TCP,
            payload_len=payload_len,
            flags=flags,
            seq=self.snd_next,
            ack=self.rcv_next,
            tls_type=tls_type,
            tls_record_seq=tls_record_seq,
        )

    def _transmit(self, packet: Packet) -> None:
        # Inlined Host.send: one Python frame per packet matters here.
        host = self.stack.host
        host.network.send(host, packet)

    def _receive_data(self, packet: Packet) -> None:
        """In-order delivery with reordering and duplicate suppression.

        Out-of-order segments (earlier ones were dropped by a middlebox
        and are being retransmitted) are buffered and delivered once the
        gap fills; duplicates of already-delivered data are only ACKed.
        """
        if packet.seq > self.rcv_next:
            self._out_of_order.setdefault(packet.seq, packet)
            self._transmit(self._make_packet(flags=TcpFlags.ACK))
            return
        if packet.seq < self.rcv_next:
            # Duplicate of delivered data: re-ACK, do not re-deliver.
            self._transmit(self._make_packet(flags=TcpFlags.ACK))
            return
        self._deliver(packet)
        while self.rcv_next in self._out_of_order:
            self._deliver(self._out_of_order.pop(self.rcv_next))
        self._transmit(self._make_packet(flags=TcpFlags.ACK))

    def _deliver(self, packet: Packet) -> None:
        self.rcv_next = packet.seq + packet.payload_len
        self.bytes_received += packet.payload_len
        if self.on_record and self.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT):
            self.on_record(self, packet)

    def _process_ack(self, ack: int) -> None:
        unacked = self._unacked
        if not unacked:
            return
        # seq_end values are strictly increasing (appends follow
        # snd_next), so acknowledged segments form a prefix.
        cleared = 0
        total = len(unacked)
        while cleared < total and unacked[cleared].seq_end <= ack:
            cleared += 1
        if cleared == 0:
            return
        for i in range(cleared):
            _unacked_release(unacked[i])
        del unacked[:cleared]
        if unacked:
            self._arm_rto(restart=True)
            if self._recovering:
                # Go-back-N style recovery: once an ACK confirms a
                # retransmission landed, resend the next hole right
                # away instead of waiting a full RTO.
                self._retransmit_head()
        else:
            self._recovering = False
            self._cancel_rto()

    def _clear_unacked(self) -> None:
        unacked = self._unacked
        for segment in unacked:
            _unacked_release(segment)
        unacked.clear()

    def _arm_rto(self, restart: bool = False) -> None:
        if not self._legacy:
            timer = self._rto_timer
            if timer is None:
                timer = self._rto_timer = DeadlineTimer(self.sim, self._on_rto)
            if restart or not timer.armed:
                timer.schedule_in(self.tuning.rto)
            return
        # Legacy (pre-PR) path: cancel + re-push a heap entry per
        # advancing ACK — the timer-churn leak the benchmark measures.
        if self._rto_handle is not None:
            if not restart:
                return
            self._rto_handle.cancel()
        self._rto_handle = self.sim.schedule(self.tuning.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        if self.state is TcpState.SYN_SENT:
            self._transmit(self._make_packet(flags=TcpFlags.SYN))
            self._arm_rto()
            return
        if not self._unacked:
            return
        self._recovering = True
        self._retransmit_head()
        self._arm_rto()

    def _retransmit_head(self) -> None:
        if not self._unacked:
            return
        segment = self._unacked[0]
        segment.retries += 1
        if segment.retries > self.tuning.max_retries:
            self.abort("timeout")
            return
        self.retransmissions += 1
        retransmit = Packet(
            src=segment.packet.src,
            dst=segment.packet.dst,
            protocol=Protocol.TCP,
            payload_len=segment.packet.payload_len,
            flags=segment.packet.flags,
            seq=segment.packet.seq,
            ack=self.rcv_next,
            tls_type=segment.packet.tls_type,
            tls_record_seq=segment.packet.tls_record_seq,
            meta=dict(segment.packet.meta, retransmission=True),
        )
        self._transmit(retransmit)

    def _arm_keepalive(self) -> None:
        self._schedule_keepalive(self.tuning.keepalive_idle)

    def _schedule_keepalive(self, delay: float) -> None:
        if not self._legacy:
            timer = self._keepalive_timer
            if timer is None:
                timer = self._keepalive_timer = DeadlineTimer(
                    self.sim, self._on_keepalive_timer
                )
            timer.schedule_in(delay)
            return
        # Legacy (pre-PR) path: a fresh cancellable heap entry per arm.
        if self._keepalive_handle is not None:
            self._keepalive_handle.cancel()
        self._keepalive_handle = self.sim.schedule(delay, self._on_keepalive_timer)

    def _on_keepalive_timer(self) -> None:
        self._keepalive_handle = None
        if self.state is not TcpState.ESTABLISHED:
            return
        idle = self.sim.now - self._last_rx_time
        remaining = self.tuning.keepalive_idle - idle
        if remaining > 1e-6:
            # Traffic arrived since; re-arm for the remainder (floored
            # so float residue cannot freeze simulated time).
            self._schedule_keepalive(max(remaining, 0.05))
            return
        if self._probes_sent >= self.tuning.keepalive_probes:
            self.abort("timeout")
            return
        self._probes_sent += 1
        self._transmit(self._make_packet(flags=_KEEPALIVE_ACK))
        self._schedule_keepalive(self.tuning.keepalive_interval)

    def _finish(self, reason: str) -> None:
        if self.state is TcpState.CLOSED:
            return
        self.state = TcpState.CLOSED
        self.close_reason = reason
        self._cancel_rto()
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
        if self._keepalive_handle is not None:
            self._keepalive_handle.cancel()
            self._keepalive_handle = None
        self._clear_unacked()
        self.stack.forget(self)
        if self.on_close:
            self.on_close(self, reason)


@dataclass
class _Listener:
    port: int
    accept: Callable[[TcpConnection], None]
    transparent: bool = False
    tuning: Optional[TcpTuning] = None


class TcpStack:
    """Per-host TCP demultiplexer.

    Supports *transparent* listeners (accepting SYNs addressed to other
    hosts' IPs) and spoofed local endpoints for outgoing connections —
    the two capabilities a transparent proxy needs.
    """

    def __init__(self, host: Host) -> None:
        self.host = host
        host.register_tcp_stack(self)
        self._connections: Dict[Tuple[Endpoint, Endpoint], TcpConnection] = {}
        self._listeners: Dict[int, _Listener] = {}
        self._ephemeral = 49200

    # -- API ------------------------------------------------------------
    def listen(
        self,
        port: int,
        accept: Callable[[TcpConnection], None],
        transparent: bool = False,
        tuning: Optional[TcpTuning] = None,
    ) -> None:
        """Accept connections on ``port`` (optionally transparently)."""
        if port in self._listeners:
            raise NetworkError(f"port {port} already listening on {self.host.name}")
        self._listeners[port] = _Listener(port, accept, transparent, tuning)

    def connect(
        self,
        remote: Endpoint,
        local_ip=None,
        tuning: Optional[TcpTuning] = None,
    ) -> TcpConnection:
        """Open a client connection; ``local_ip`` may spoof another host."""
        ip = local_ip if local_ip is not None else self.host.ip
        local = Endpoint(ip, self._next_port())
        connection = TcpConnection(self, local, remote, tuning)
        self._connections[connection.four_tuple] = connection
        connection.open_active()
        return connection

    def forget(self, connection: TcpConnection) -> None:
        """Drop a closed connection from the demux table."""
        self._connections.pop(connection.four_tuple, None)

    @property
    def connection_count(self) -> int:
        """Live connections in the demux table."""
        return len(self._connections)

    # -- demux ----------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Demultiplex one inbound TCP packet."""
        key = (packet.dst, packet.src)
        connection = self._connections.get(key)
        if connection is not None:
            connection.handle(packet)
            return
        flag_bits = packet.flags.value
        if flag_bits & _SYN and not flag_bits & _ACK:
            self._accept_syn(packet)
        # Anything else for an unknown connection is silently ignored, as
        # a real host would answer with RST; the simulation has no
        # scanners, so the distinction never matters.

    def _accept_syn(self, packet: Packet) -> None:
        listener = self._listeners.get(packet.dst.port)
        if listener is None:
            return
        local_ips = {self.host.ip} | self.host.aliases
        if not listener.transparent and packet.dst.ip not in local_ips:
            return
        connection = TcpConnection(self, packet.dst, packet.src, listener.tuning)
        connection.state = TcpState.SYN_RCVD
        self._connections[connection.four_tuple] = connection
        listener.accept(connection)
        connection._transmit(connection._make_packet(flags=_SYN_ACK))

    def _next_port(self) -> int:
        self._ephemeral += 1
        if self._ephemeral > 65000:
            self._ephemeral = 49201
        return self._ephemeral
