"""UDP datagram flows.

Google Home Mini talks QUIC (UDP) to its cloud when network conditions
allow, and falls back to TCP otherwise (Section IV-B).  The guard's
Traffic Handler therefore runs a UDP forwarder next to the TCP proxy.
QUIC itself is not re-implemented; a :class:`UdpFlow` models the parts
that matter to the guard — datagrams with observable lengths, an idle
timeout, and loss-triggered client retry/failure.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.addresses import Endpoint
from repro.net.link import Host
from repro.net.packet import Packet, Protocol, TlsRecordType


class UdpFlow:
    """A bidirectional UDP conversation from one host's point of view.

    The owner registers the local port on its host; inbound datagrams
    are handed to ``on_datagram(flow, packet)``.
    """

    def __init__(
        self,
        host: Host,
        local: Endpoint,
        remote: Endpoint,
        on_datagram: Optional[Callable[["UdpFlow", Packet], None]] = None,
    ) -> None:
        self.host = host
        self.local = local
        self.remote = remote
        self.on_datagram = on_datagram
        self.datagrams_sent = 0
        self.datagrams_received = 0
        host.register_udp_handler(local.port, self._receive)

    def send(
        self,
        payload_len: int,
        tls_type: TlsRecordType = TlsRecordType.APPLICATION_DATA,
        meta: Optional[dict] = None,
    ) -> Packet:
        """Send one datagram to the remote endpoint."""
        if payload_len <= 0:
            raise NetworkError(f"datagram payload must be positive, got {payload_len!r}")
        packet = Packet(
            src=self.local,
            dst=self.remote,
            protocol=Protocol.UDP,
            payload_len=payload_len,
            tls_type=tls_type,
        )
        if meta:
            packet.meta.update(meta)
        self.datagrams_sent += 1
        self.host.send(packet)
        return packet

    def _receive(self, packet: Packet) -> None:
        if packet.src != self.remote and packet.dst != self.local:
            return
        self.datagrams_received += 1
        if self.on_datagram:
            self.on_datagram(self, packet)


def ephemeral_udp_flow(
    host: Host,
    remote: Endpoint,
    port: int,
    on_datagram: Optional[Callable[[UdpFlow, Packet], None]] = None,
) -> UdpFlow:
    """Create a flow bound to ``port`` on ``host`` toward ``remote``."""
    local = Endpoint(host.ip, port)
    return UdpFlow(host, local, remote, on_datagram)
