"""Wireshark-like packet capture.

The paper's authors ran Wireshark on the guard laptop to discover the
traffic structure (Section IV-B); our experiments do the same against
the simulated network.  A capture is an append-only list of immutable
records with simple filtering helpers, and can render itself in the
style of the paper's Figure 4 packet listings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.net.addresses import IPv4Address
from repro.net.link import Network
from repro.net.packet import Packet, Protocol, TcpFlags, TlsRecordType


@dataclass(frozen=True)
class CaptureRecord:
    """One captured packet, frozen at observation time."""

    number: int
    time: float
    src: str
    dst: str
    src_ip: IPv4Address
    dst_ip: IPv4Address
    protocol: Protocol
    payload_len: int
    flags: TcpFlags
    tls_type: TlsRecordType
    tls_record_seq: object
    retransmission: bool

    @property
    def is_application_data(self) -> bool:
        """Whether the packet carried a TLS application-data record."""
        return self.tls_type is TlsRecordType.APPLICATION_DATA and self.payload_len > 0

    def line(self) -> str:
        """Render like a Wireshark summary row."""
        info = self.tls_type.value if self.tls_type is not TlsRecordType.NONE else "tcp"
        if TcpFlags.SYN in self.flags:
            info = "SYN" + (",ACK" if TcpFlags.ACK in self.flags else "")
        elif TcpFlags.RST in self.flags:
            info = "RST"
        elif TcpFlags.FIN in self.flags:
            info = "FIN"
        elif TcpFlags.KEEPALIVE in self.flags:
            info = "keep-alive"
        retx = " [retransmission]" if self.retransmission else ""
        return (
            f"{self.number:>6}  {self.time:>9.4f}  {self.src:<21} -> {self.dst:<21}"
            f"  {self.protocol.value:<3}  len={self.payload_len:<5}  {info}{retx}"
        )


class PacketCapture:
    """Records every packet the network delivers.

    Attach with :meth:`attach`; filter with the ``between`` / ``from_ip``
    helpers.  Live consumers (the guard) should not use a capture — they
    get packets from the tap — but experiments use captures to build the
    figures.
    """

    def __init__(self) -> None:
        self.records: List[CaptureRecord] = []
        self._network: Optional[Network] = None
        self._filter: Optional[Callable[[Packet], bool]] = None

    def attach(self, network: Network, keep: Optional[Callable[[Packet], bool]] = None) -> "PacketCapture":
        """Start capturing on ``network``; optional ``keep`` predicate."""
        self._network = network
        self._filter = keep
        network.add_observer(self._observe)
        return self

    def _observe(self, packet: Packet, scope: str) -> None:
        if self._filter is not None and not self._filter(packet):
            return
        self.records.append(
            CaptureRecord(
                number=packet.number,
                time=packet.send_time,
                src=str(packet.src),
                dst=str(packet.dst),
                src_ip=packet.src.ip,
                dst_ip=packet.dst.ip,
                protocol=packet.protocol,
                payload_len=packet.payload_len,
                flags=packet.flags,
                tls_type=packet.tls_type,
                tls_record_seq=packet.tls_record_seq,
                retransmission=bool(packet.meta.get("retransmission")),
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- filters --------------------------------------------------------
    def involving(self, ip: IPv4Address) -> List[CaptureRecord]:
        """Records with ``ip`` as either endpoint."""
        return [r for r in self.records if ip in (r.src_ip, r.dst_ip)]

    def from_ip(self, ip: IPv4Address) -> List[CaptureRecord]:
        """Records sent by ``ip``."""
        return [r for r in self.records if r.src_ip == ip]

    def application_data(self, records: Optional[Iterable[CaptureRecord]] = None) -> List[CaptureRecord]:
        """Only application-data records."""
        source = self.records if records is None else records
        return [r for r in source if r.is_application_data]

    def between(self, start: float, end: float) -> List[CaptureRecord]:
        """Records captured inside [start, end]."""
        return [r for r in self.records if start <= r.time <= end]

    # -- rendering ------------------------------------------------------
    def render(self, records: Optional[Sequence[CaptureRecord]] = None, limit: int = 40) -> str:
        """Figure-4-style packet listing."""
        rows = list(self.records if records is None else records)[:limit]
        header = f"{'#':>6}  {'time':>9}  {'source':<21}    {'destination':<21}  proto"
        return "\n".join([header] + [r.line() for r in rows])
