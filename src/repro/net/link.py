"""Hosts, the home LAN, and inline tap interposition.

The topology mirrors the paper's deployment (Figure 2): smart-home
devices and the VoiceGuard laptop share a LAN behind a WiFi router;
cloud servers live across a WAN.  The guard laptop is installed as an
*inline tap* on the smart speaker's IP: every packet to or from the
speaker is delivered to the tap instead of its nominal destination, and
the tap decides what to do with it (bridge it, terminate TCP, hold it).
Packets the tap itself originates are routed directly, which is what
lets it impersonate either side transparently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import NetworkError
from repro.net.addresses import IPv4Address
from repro.net.packet import Packet, Protocol
from repro.sim import compat
from repro.sim.random import RngHub
from repro.sim.simulator import Simulator

PacketObserver = Callable[[Packet, str], None]


class Host:
    """A network endpoint with one IPv4 address.

    Subclasses (speakers, cloud servers, the guard) attach protocol
    stacks via :meth:`register_tcp_stack` / :meth:`register_udp_handler`.
    """

    def __init__(self, name: str, ip: IPv4Address) -> None:
        self.name = name
        self.ip = ip
        self.aliases: set = set()
        self.network: Optional[Network] = None
        self._tcp_stack = None  # set by TcpStack.__init__
        self._udp_handlers: Dict[int, Callable[[Packet], None]] = {}
        self._udp_any_port: Optional[Callable[[Packet], None]] = None

    # -- wiring ---------------------------------------------------------
    def attached(self, network: "Network") -> None:
        """Called by :meth:`Network.attach`."""
        self.network = network

    def register_tcp_stack(self, stack) -> None:
        """Attach the host's (single) TCP stack."""
        if self._tcp_stack is not None:
            raise NetworkError(f"host {self.name} already has a TCP stack")
        self._tcp_stack = stack

    @property
    def tcp(self):
        """The host's TCP stack (raises if none installed)."""
        if self._tcp_stack is None:
            raise NetworkError(f"host {self.name} has no TCP stack")
        return self._tcp_stack

    def register_udp_handler(self, port: int, handler: Callable[[Packet], None]) -> None:
        """Register a per-port UDP handler."""
        self._udp_handlers[port] = handler

    def register_udp_any(self, handler: Callable[[Packet], None]) -> None:
        """Receive every UDP packet delivered to this host regardless of
        destination port/IP — needed by the transparent UDP forwarder."""
        self._udp_any_port = handler

    # -- traffic --------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Inject a packet into the network with this host as origin."""
        if self.network is None:
            raise NetworkError(f"host {self.name} is not attached to a network")
        self.network.send(self, packet)

    def receive(self, packet: Packet) -> None:
        """Deliver a packet to this host's protocol stacks."""
        if packet.protocol is Protocol.TCP:
            if self._tcp_stack is not None:
                self._tcp_stack.receive(packet)
            return
        if self._udp_any_port is not None:
            self._udp_any_port(packet)
            return
        handler = self._udp_handlers.get(packet.dst.port)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.ip})"


class TapHost(Host):
    """A host that can receive packets addressed to *other* IPs.

    The VoiceGuard laptop subclasses this; :meth:`intercept` is called
    for every tapped packet.
    """

    def intercept(self, packet: Packet) -> None:
        """Handle a packet diverted to this tap.  Default: bridge it."""
        self.bridge(packet)

    def bridge(self, packet: Packet) -> None:
        """Pass a tapped packet through unchanged to its true target."""
        if self.network is None:
            raise NetworkError(f"tap {self.name} is not attached to a network")
        self.network.send(self, packet)


class Network:
    """The simulated LAN + WAN fabric.

    Latency model: a constant per-hop latency (LAN or WAN) plus a small
    uniform jitter.  Packets between two private addresses stay on the
    LAN; anything crossing to a public address pays the WAN latency.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngHub,
        lan_latency: float = 0.0004,
        wan_latency: float = 0.018,
        jitter: float = 0.15,
        wan_loss: float = 0.0,
    ) -> None:
        self.sim = sim
        self._rng = rng.stream("net.jitter")
        self._loss_rng = rng.stream("net.loss")
        self.lan_latency = lan_latency
        self.wan_latency = wan_latency
        self.jitter = jitter
        self.wan_loss = wan_loss  # per-packet drop probability on the WAN
        self.packets_lost = 0
        self._hosts: Dict[IPv4Address, Host] = {}
        self._taps: Dict[IPv4Address, TapHost] = {}
        self._observers: List[PacketObserver] = []
        self._last_delivery: Dict[tuple, float] = {}
        self.delivered_count = 0
        self._legacy = compat.legacy_kernel_enabled()
        # (origin_ip, src, dst) -> routing/latency facts.  Routing only
        # changes when the topology does, so everything derivable from
        # the key is computed once instead of per packet.  Endpoints
        # carry precomputed hashes, keeping the lookup cheap; FIFO
        # floors are tracked under small interned ints so the hot path
        # never hashes a (src_ip, dst_ip, protocol) triple.
        self._path_cache: Dict[tuple, tuple] = {}
        self._fifo_ids: Dict[tuple, int] = {}
        # Jitter draws come from the stream in blocks: ``random(n)``
        # yields the exact doubles ``n`` scalar draws would (pinned by a
        # unit test), so buffering is invisible to golden traces.
        self._jitter_buf: list = []
        self._jitter_idx = 0
        # _last_delivery floors are useless once simulated time passes
        # them; prune opportunistically so the dict does not keep one
        # entry per (src, dst, protocol) path for a fleet-length run.
        self._prune_at = 64

    # -- topology -------------------------------------------------------
    def attach(self, host: Host) -> Host:
        """Add a host to the fabric."""
        if host.ip in self._hosts:
            raise NetworkError(f"duplicate host IP {host.ip}")
        self._hosts[host.ip] = host
        host.attached(self)
        self._path_cache.clear()
        return host

    def add_alias(self, host: Host, ip: IPv4Address) -> None:
        """Register an extra IP for ``host`` (cloud clusters expose many
        addresses behind one domain name)."""
        if ip in self._hosts:
            raise NetworkError(f"alias {ip} collides with an existing host")
        if host.ip not in self._hosts:
            raise NetworkError("attach the host before adding aliases")
        self._hosts[ip] = host
        host.aliases.add(ip)
        self._path_cache.clear()

    def host_for(self, ip: IPv4Address) -> Host:
        """The host owning ``ip``."""
        try:
            return self._hosts[ip]
        except KeyError:
            raise NetworkError(f"no host with IP {ip}") from None

    def install_tap(self, covered_ip: IPv4Address, tap: TapHost) -> None:
        """Divert all of ``covered_ip``'s traffic through ``tap``.

        This models plugging the VoiceGuard laptop in between the smart
        speaker and the WiFi router.
        """
        if covered_ip not in self._hosts:
            raise NetworkError(f"cannot tap unknown IP {covered_ip}")
        if tap.ip not in self._hosts:
            raise NetworkError("tap host must be attached to the network first")
        self._taps[covered_ip] = tap
        self._path_cache.clear()

    def remove_tap(self, covered_ip: IPv4Address) -> None:
        """Stop diverting an IP's traffic."""
        self._taps.pop(covered_ip, None)
        self._path_cache.clear()

    def add_observer(self, observer: PacketObserver) -> None:
        """Observe every delivered packet: ``observer(packet, "lan"|"wan")``."""
        self._observers.append(observer)

    # -- delivery -------------------------------------------------------
    def send(self, origin: Host, packet: Packet) -> None:
        """Route ``packet`` from ``origin``, honoring tap diversion.

        A packet whose source or destination IP is covered by a tap is
        delivered to the tap *unless the tap itself is the origin* —
        packets a tap re-injects go straight to their true destination.
        """
        if self._legacy:
            self._send_legacy(origin, packet)
            return
        sim = self.sim
        now = sim._clock._now
        packet.send_time = now
        key = (origin.ip, packet.src, packet.dst)
        path_cache = self._path_cache
        path = path_cache.get(key)
        if path is None:
            if len(path_cache) >= 4096:
                # Ephemeral ports make the key space unbounded on a
                # fleet-length run; recomputing after a wholesale wipe
                # is cheaper than tracking per-entry staleness.
                path_cache.clear()
            path = self._path_for(origin, packet)
            path_cache[key] = path
        target, crosses_wan, base, fifo_id, scope = path
        if crosses_wan and self.wan_loss > 0.0 and self._loss_rng.random() < self.wan_loss:
            # Lost in transit; TCP's retransmission handles recovery.
            self.packets_lost += 1
            return
        jitter_idx = self._jitter_idx
        if jitter_idx >= len(self._jitter_buf):
            self._jitter_buf = self._rng.random(256).tolist()
            jitter_idx = 0
        self._jitter_idx = jitter_idx + 1
        latency = base * (1.0 + self.jitter * self._jitter_buf[jitter_idx])
        # Per-path FIFO: jitter never reorders packets of one flow pair,
        # matching TCP's in-order delivery (and single-path reality).
        last_delivery = self._last_delivery
        arrival = now + latency
        floor = last_delivery.get(fifo_id, 0.0) + 1e-6
        if arrival < floor:
            arrival = floor
        last_delivery[fifo_id] = arrival
        if len(last_delivery) >= self._prune_at:
            self._prune_delivery_floors(now)
        # Arrival is never before `now`, so the schedule-in-the-past
        # validation in Simulator.post_at is skipped on this hot path.
        sim._queue.post(arrival, self._deliver, (packet, target, scope))

    def _send_legacy(self, origin: Host, packet: Packet) -> None:
        """The pre-PR send path, kept verbatim as the benchmark
        baseline: per-packet routing and RFC1918 checks, scalar jitter
        draws, a cancellable heap entry per delivery, and no floor
        pruning (see :mod:`repro.sim.compat`)."""
        packet.send_time = self.sim.now
        target = self._route(origin, packet)
        crosses_wan = not (
            _is_private_uncached(packet.src.ip) and _is_private_uncached(packet.dst.ip)
        )
        if crosses_wan and self.wan_loss > 0.0 and self._loss_rng.random() < self.wan_loss:
            self.packets_lost += 1
            return
        latency = self._latency(origin.ip, target.ip)
        key = (packet.src.ip, packet.dst.ip, packet.protocol)
        arrival = max(self.sim.now + latency, self._last_delivery.get(key, 0.0) + 1e-6)
        self._last_delivery[key] = arrival
        self.sim.schedule_at(arrival, self._deliver, packet, target)

    def _path_for(self, origin: Host, packet: Packet) -> tuple:
        """Resolve everything about a path that only depends on the
        (origin, src, dst) key: the delivery target, whether the WAN
        loss model applies, the base hop latency, the interned FIFO
        floor id, and the observer scope label."""
        target = self._route(origin, packet)
        local = packet.src.ip.is_private and packet.dst.ip.is_private
        base = (
            self.lan_latency
            if (origin.ip.is_private and target.ip.is_private)
            else self.wan_latency
        )
        fifo_triple = (packet.src.ip, packet.dst.ip, packet.protocol)
        fifo_id = self._fifo_ids.setdefault(fifo_triple, len(self._fifo_ids))
        return (target, not local, base, fifo_id, "lan" if local else "wan")

    def _prune_delivery_floors(self, now: float) -> None:
        """Drop FIFO floors that simulated time has already passed.

        A floor at ``last <= now - 1e-6`` cannot raise any future
        arrival (every new arrival is at least ``now``), so the entry is
        dead weight.  The threshold doubles with the surviving size, so
        pruning stays O(1) amortized per send.
        """
        stale = now - 1e-6
        last_delivery = self._last_delivery
        for key in [k for k, t in last_delivery.items() if t <= stale]:
            del last_delivery[key]
        self._prune_at = max(64, 2 * len(last_delivery))

    def _route(self, origin: Host, packet: Packet) -> Host:
        for covered_ip in (packet.src.ip, packet.dst.ip):
            tap = self._taps.get(covered_ip)
            if tap is not None and origin is not tap:
                return tap
        return self.host_for(packet.dst.ip)

    def _latency(self, a: IPv4Address, b: IPv4Address) -> float:
        base = (
            self.lan_latency
            if (_is_private_uncached(a) and _is_private_uncached(b))
            else self.wan_latency
        )
        return base * (1.0 + self.jitter * float(self._rng.random()))

    def _deliver(self, packet: Packet, target: Host, scope: Optional[str] = None) -> None:
        self.delivered_count += 1
        if scope is None:
            scope = "lan" if (packet.src.ip.is_private and packet.dst.ip.is_private) else "wan"
        for observer in self._observers:
            observer(packet, scope)
        if isinstance(target, TapHost) and packet.dst.ip != target.ip:
            target.intercept(packet)
        else:
            target.receive(packet)


def _is_private_uncached(ip: IPv4Address) -> bool:
    """The pre-PR per-call RFC1918 check (re-parses the dotted quad).

    Only the legacy benchmark baseline uses it, so the cost the cached
    :attr:`IPv4Address.is_private` removed stays measurable.
    """
    octets = [int(part) for part in ip.text.split(".")]
    if octets[0] == 10:
        return True
    if octets[0] == 192 and octets[1] == 168:
        return True
    return octets[0] == 172 and 16 <= octets[1] <= 31
