#!/usr/bin/env python
"""Concurrent-guard load benchmark: commands/sec vs hold-latency knee.

Two things, in order:

1. **Equivalence gate** — before any number is trusted, a single-speaker
   serialized workload is run twice, once with the concurrency knobs at
   their inert defaults and once with them fully on (query slots,
   batching, held-byte budget).  The guard command-event streams and
   the final sim clock must be byte-identical: with one command in
   flight the coordinator must be a provable no-op, the same discipline
   the sim/obs/fleet benches enforce.

2. **Knee chart** — the loadtest grid (1/2/4 speakers x offered-load
   levels, coordinated mode, plus the strict and degraded stress cells)
   measured for resolved commands/sec against the hold-time p50/p99.
   The knee is the fastest cell per speaker count whose p99 stays under
   the bound with nothing lost to timeouts; the full run enforces that
   the 4-speaker knee sustains >= 2x the single-flow commands/sec.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_load.py
    PYTHONPATH=src python benchmarks/bench_load.py --smoke

Writes ``benchmarks/results/BENCH_load.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.core.config import VoiceGuardConfig
from repro.experiments.bench_sim import guard_event_stream
from repro.experiments.loadtest import (
    LoadCell,
    run_loadtest,
    saturation_knee,
)
from repro.experiments.scenarios import build_scenario
from repro.experiments.workload import SevenDayWorkload

RATIO_FLOOR = 2.0  # 4-speaker knee vs single-flow resolved commands/sec
P99_BOUND = 10.0  # seconds of hold p99 a cell may reach and still be pre-knee


def assert_single_flow_identical(seed: int, smoke: bool) -> int:
    """Knobs-on vs knobs-off on a serialized single-speaker workload.

    Returns the command count; raises AssertionError on any drift.
    """
    legit, malicious = (4, 3) if smoke else (12, 9)
    streams = []
    clocks = []
    for config in (
        VoiceGuardConfig(),
        VoiceGuardConfig(max_concurrent_queries=2, decision_batching=True,
                         held_byte_budget=65_536),
    ):
        scenario = build_scenario("house", "echo", seed=seed, config=config)
        SevenDayWorkload(scenario).run(legit, malicious)
        streams.append(guard_event_stream(scenario.guard))
        clocks.append(scenario.sim.now)
    if streams[0] != streams[1]:
        raise AssertionError(
            "concurrency knobs changed the single-flow guard event stream"
        )
    if clocks[0] != clocks[1]:
        raise AssertionError(
            f"concurrency knobs moved the sim clock: "
            f"{clocks[0]!r} != {clocks[1]!r}"
        )
    return len(streams[0])


def _cell_payload(cell: LoadCell) -> dict:
    def num(value: float) -> float:
        return round(value, 6) if value == value else None

    return {
        "speakers": cell.speakers,
        "rate": cell.rate,
        "mode": cell.mode,
        "offered_per_sec": num(cell.offered_rate),
        "commands": cell.commands,
        "resolved_per_sec": num(cell.throughput),
        "hold_p50_s": num(cell.hold_p50),
        "hold_p99_s": num(cell.hold_p99),
        "released": cell.released,
        "blocked": cell.blocked,
        "timeouts": cell.timeouts,
        "batched": cell.batched,
        "queued": cell.queued,
        "expired_in_queue": cell.expired,
        "overflows": cell.overflows,
        "failsafes": cell.failsafes,
        "queue_peak": int(cell.queue_peak),
    }


def run_bench(seed: int = 3, smoke: bool = False) -> dict:
    gate_commands = assert_single_flow_identical(seed, smoke)

    start = time.perf_counter()
    result = run_loadtest(seed=seed, smoke=smoke)
    elapsed = time.perf_counter() - start

    knee1 = saturation_knee(result.cells, 1, p99_bound=P99_BOUND)
    knee4 = saturation_knee(result.cells, 4, p99_bound=P99_BOUND)
    single = knee1.throughput if knee1 is not None else float("nan")
    at_knee = knee4.throughput if knee4 is not None else float("nan")
    ratio = at_knee / single if single and single == single else float("nan")
    return {
        "bench": "loadtest",
        "seed": seed,
        "smoke": smoke,
        "streams_identical": True,  # asserted above, before any timing
        "gate_commands": gate_commands,
        "cells": [_cell_payload(cell) for cell in result.cells],
        "knee": {
            "p99_bound_s": P99_BOUND,
            "single_flow": _cell_payload(knee1) if knee1 else None,
            "four_speaker": _cell_payload(knee4) if knee4 else None,
        },
        "single_flow_resolved_per_sec": round(single, 6),
        "knee_resolved_per_sec": round(at_knee, 6),
        "throughput_ratio": round(ratio, 6) if ratio == ratio else None,
        "ratio_floor": RATIO_FLOOR,
        "wall_elapsed_s": round(elapsed, 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def render(payload: dict) -> str:
    lines = [
        f"concurrent-guard load bench (seed {payload['seed']}"
        f"{', smoke' if payload['smoke'] else ''}):",
        f"  single-flow equivalence gate: knobs on vs off byte-identical "
        f"over {payload['gate_commands']} events",
    ]
    for cell in payload["cells"]:
        p99 = cell["hold_p99_s"]
        lines.append(
            f"  {cell['speakers']}spk {cell['mode']:<11} {cell['rate']:<4}: "
            f"{cell['resolved_per_sec']:.3f} resolved/s, "
            f"hold p99 {p99 if p99 is not None else float('nan'):.2f}s, "
            f"batched {cell['batched']}, queued {cell['queued']}, "
            f"overflows {cell['overflows']}"
        )
    ratio = payload["throughput_ratio"]
    lines.append(
        f"  knee: {payload['knee_resolved_per_sec']:.3f} resolved/s at 4 "
        f"speakers vs {payload['single_flow_resolved_per_sec']:.3f} "
        f"single-flow ({ratio:.1f}x, floor {payload['ratio_floor']:.0f}x, "
        f"p99 bound {payload['knee']['p99_bound_s']:.0f}s)"
        if ratio is not None else "  knee: not reached (no eligible cell)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="corner cells only: exercises the path and the "
                             "equivalence gate, numbers not citable")
    parser.add_argument("--output",
                        default="benchmarks/results/BENCH_load.json")
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, smoke=args.smoke)
    print(render(payload))

    target = pathlib.Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"(written to {target})")

    ratio = payload["throughput_ratio"]
    if ratio is None:
        print("FAIL: the sweep never found a pre-knee cell at both 1 and 4 "
              "speakers", file=sys.stderr)
        return 1
    if not args.smoke and ratio < RATIO_FLOOR:
        print(f"FAIL: 4-speaker knee throughput {ratio:.2f}x single-flow, "
              f"below the {RATIO_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
