"""Section V-A2 corpus statistics.

Paper: Alexa 320 commands, mean 5.95 words, 86.8 % with >= 4 words;
Google 443 commands, mean 7.39 words, 93.9 % with >= 5 words.
"""

from __future__ import annotations

from repro.audio.commands import alexa_corpus, google_corpus
from repro.experiments.fig6 import corpus_report


def test_corpus_statistics(benchmark, publish):
    text = benchmark.pedantic(corpus_report, rounds=1, iterations=1)
    publish("corpus_stats", text)
    assert abs(alexa_corpus().mean_word_count() - 5.95) < 0.1
    assert abs(google_corpus().mean_word_count() - 7.39) < 0.1
