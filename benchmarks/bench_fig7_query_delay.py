"""Figure 7: RSSI query processing time, 100 invocations per speaker.

Paper: Echo Dot mean 1.622 s (78 % under 2 s, two runs slightly over
3 s); Google Home Mini mean 1.892 s; no connection ever terminated by
the holding.
"""

from __future__ import annotations

from repro.experiments.fig7 import PAPER_ECHO_MEAN, PAPER_GOOGLE_MEAN, run_fig7


def test_fig7_query_delays(benchmark, publish, results_dir):
    echo = benchmark.pedantic(
        lambda: run_fig7("echo", invocations=100, seed=4), rounds=1, iterations=1,
    )
    google = run_fig7("google", invocations=100, seed=4)
    publish("fig7_query_delay", echo.render() + "\n\n" + google.render())
    from repro.analysis.export import export_delays
    export_delays(echo, results_dir / "fig7_echo_delays.csv")
    export_delays(google, results_dir / "fig7_google_delays.csv")
    assert abs(echo.mean - PAPER_ECHO_MEAN) < 0.35
    assert abs(google.mean - PAPER_GOOGLE_MEAN) < 0.35
    assert google.mean > echo.mean  # the paper's ordering
    assert 0.6 <= echo.fraction_under_2s <= 0.95
