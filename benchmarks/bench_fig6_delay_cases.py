"""Figure 6: the two user-visible delay cases.

Paper: >= 80 % of RSSI queries complete while the user is still
speaking (case a); the rest add only a small residual (case b).
"""

from __future__ import annotations

from repro.experiments.fig6 import run_fig6


def test_fig6_delay_cases(benchmark, publish):
    echo = benchmark.pedantic(
        lambda: run_fig6("echo", invocations=120, seed=6), rounds=1, iterations=1,
    )
    google = run_fig6("google", invocations=120, seed=6)
    publish("fig6_delay_cases", echo.render() + "\n" + google.render())
    assert echo.hidden_fraction >= 0.7
    assert echo.mean_residual < 1.5
