"""Figure 3: traffic spikes during a user-Echo interaction.

Paper: the naive post-idle-spike rule mistakes the response spikes
(3)(4)(5) for commands and holds them; the signature method does not.
"""

from __future__ import annotations

from repro.experiments.fig3 import run_fig3


def test_fig3_interaction_spikes(benchmark, publish):
    result = benchmark.pedantic(lambda: run_fig3(seed=5), rounds=1, iterations=1)
    publish("fig3_spikes", result.render())
    assert len(result.spikes) == 4  # command phase + 3 response spikes
    assert result.naive_wrong_holds == 3
    assert result.guard_command_windows == 1
    assert result.guard_response_windows == 3
    assert max(result.guard_response_hold_times) < 0.3
