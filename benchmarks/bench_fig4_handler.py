"""Figure 4: the Traffic Handler's three cases.

Paper: (I) reply < 0.04 s without the proxy; (II) held ~1.5 s then
released, reply right after release, session intact; (III) held then
discarded -> TLS record-sequence mismatch closes the session.
"""

from __future__ import annotations

from repro.experiments.fig4 import run_fig4


def test_fig4_traffic_handler_cases(benchmark, publish):
    result = benchmark.pedantic(lambda: run_fig4(seed=9), rounds=1, iterations=1)
    publish("fig4_handler", result.render())
    case1, case2, case3 = (result.case(n) for n in ("case I", "case II", "case III"))
    assert case1.executed and case1.reply_delay < 0.15
    assert case2.executed and not case2.tls_violation
    assert 0.5 < case2.hold_duration < 4.0
    assert not case3.executed
    assert case3.tls_violation and case3.session_closed and case3.reconnected
