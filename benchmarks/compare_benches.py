#!/usr/bin/env python
"""Compare regenerated ``BENCH_*.json`` payloads against committed baselines.

The CI ``bench-regression`` job regenerates every benchmark artifact in
smoke mode and runs this script against the baselines committed under
``benchmarks/results/``.  Two comparison bases, chosen per metric by
whether the two payloads were produced in the same mode:

* **same mode** (both smoke or both full): a throughput/speedup metric
  may not regress by more than ``--tolerance`` (default 30%) relative
  to the baseline.
* **cross mode** (CI's smoke run vs the committed full-run numbers):
  relative comparison is meaningless — smoke timings are deliberately
  too short to be citable — so only each metric's absolute floor (or
  ceiling) is enforced: a speedup must stay a speedup, the loadtest
  ratio must clear its 2x floor, the obs overhead must stay sane.

Boolean invariants (``tables_identical``, ``streams_identical``,
``events_identical``) must be truthy in the candidate regardless of
mode: equivalence is asserted per run, not timed, so smoke runs prove
it just as hard as full runs.

A markdown summary table is appended to ``$GITHUB_STEP_SUMMARY`` when
set (and always printed).  Exit 1 on any failed row.

Usage (from the repository root)::

    python benchmarks/compare_benches.py --candidate-dir /tmp/bench-out
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from dataclasses import dataclass, field
from typing import List, Optional

DEFAULT_TOLERANCE = 0.30

# Absolute slack for lower-is-better metrics whose baseline sits near
# zero (a relative band around ~0.0 would reject measurement noise).
ABS_SLACK = 0.05


@dataclass
class Metric:
    """One numeric series of a benchmark payload."""

    path: str  # dotted path into the JSON payload
    floor: Optional[float] = None  # absolute: candidate must be >= (always)
    ceiling: Optional[float] = None  # absolute: candidate must be <= (always)
    higher_better: bool = True  # direction of the relative same-mode check


@dataclass
class Bench:
    """What to check in one ``BENCH_*.json`` file."""

    mode_path: Optional[str]  # JSON key distinguishing smoke runs, if any
    metrics: List[Metric] = field(default_factory=list)
    invariants: List[str] = field(default_factory=list)  # must be truthy


BENCHES = {
    "BENCH_rssi.json": Bench(
        mode_path=None,  # rssi smoke runs just shorten --seconds
        metrics=[
            Metric("speedups.grid_map", floor=1.0),
            Metric("speedups.mean_rssi_cached_vs_reference", floor=1.0),
            Metric("speedups.mean_rssi_many_vs_reference", floor=1.0),
            Metric("speedups.sample_batch_vs_scalar", floor=0.8),
            Metric("speedups.walls_many_vs_scalar", floor=1.0),
        ],
    ),
    "BENCH_sim.json": Bench(
        mode_path="smoke",
        metrics=[
            Metric("speedups.seven_day", floor=1.0),
            Metric("speedups.compressed_gap", floor=0.8),
        ],
    ),
    "BENCH_obs.json": Bench(
        mode_path="smoke",
        metrics=[
            Metric("overhead_fraction", ceiling=0.5, higher_better=False),
        ],
        invariants=["events_identical"],
    ),
    "BENCH_fleet.json": Bench(
        mode_path="smoke",
        metrics=[Metric("speedup", floor=1.0)],
        invariants=["tables_identical"],
    ),
    "BENCH_fleet_full.json": Bench(
        mode_path="smoke",
        metrics=[Metric("speedup", floor=1.0)],
        invariants=["tables_identical", "streams_identical"],
    ),
    "BENCH_load.json": Bench(
        mode_path="smoke",
        metrics=[
            Metric("throughput_ratio", floor=2.0),
            Metric("knee_resolved_per_sec", floor=0.0),
        ],
        invariants=["streams_identical"],
    ),
    "BENCH_recognition.json": Bench(
        mode_path="smoke",
        metrics=[
            Metric("signature_drop_points", floor=20.0),
            Metric("retrain_gap_points", ceiling=10.0, higher_better=False),
            Metric("throughput.knn_windows_per_sec", floor=200.0),
            Metric("throughput.mlp_windows_per_sec", floor=200.0),
        ],
        invariants=["weights_identical", "tables_identical"],
    ),
}


def _lookup(payload: dict, path: str):
    value = payload
    for key in path.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


@dataclass
class Row:
    bench: str
    metric: str
    baseline: object
    candidate: object
    basis: str
    ok: bool
    note: str = ""

    def markdown(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value) if value is not None else "—"

        status = "✅" if self.ok else "❌"
        note = self.note or ""
        return (f"| {self.bench} | `{self.metric}` | {fmt(self.baseline)} | "
                f"{fmt(self.candidate)} | {self.basis} | {status} {note} |")


def compare_bench(
    name: str,
    bench: Bench,
    baseline: dict,
    candidate: dict,
    tolerance: float,
) -> List[Row]:
    rows: List[Row] = []
    same_mode = (
        bench.mode_path is not None
        and baseline.get(bench.mode_path) == candidate.get(bench.mode_path)
    )
    for metric in bench.metrics:
        base = _lookup(baseline, metric.path)
        cand = _lookup(candidate, metric.path)
        if not isinstance(cand, (int, float)):
            rows.append(Row(name, metric.path, base, cand, "presence", False,
                            "missing in candidate"))
            continue
        ok = True
        notes: List[str] = []
        if metric.floor is not None and cand < metric.floor:
            ok = False
            notes.append(f"below floor {metric.floor:g}")
        if metric.ceiling is not None and cand > metric.ceiling:
            ok = False
            notes.append(f"above ceiling {metric.ceiling:g}")
        basis = "floor/ceiling"
        if same_mode and isinstance(base, (int, float)):
            basis = f"±{tolerance:.0%} vs baseline"
            if metric.higher_better:
                if cand < base * (1.0 - tolerance):
                    ok = False
                    notes.append(f"regressed >{tolerance:.0%}")
            else:
                bound = (base * (1.0 + tolerance) if base > 0
                         else base + ABS_SLACK)
                if cand > bound:
                    ok = False
                    notes.append(f"regressed >{tolerance:.0%}")
        rows.append(Row(name, metric.path, base, cand, basis, ok,
                        "; ".join(notes)))
    for path in bench.invariants:
        cand = _lookup(candidate, path)
        rows.append(Row(name, path, _lookup(baseline, path), cand,
                        "invariant", bool(cand),
                        "" if cand else "must be truthy"))
    return rows


def run_compare(
    baseline_dir: pathlib.Path,
    candidate_dir: pathlib.Path,
    tolerance: float,
) -> List[Row]:
    rows: List[Row] = []
    for name, bench in sorted(BENCHES.items()):
        base_path = baseline_dir / name
        cand_path = candidate_dir / name
        if not base_path.exists():
            # A brand-new bench with no committed baseline yet: nothing
            # to regress against, but the candidate's own floors and
            # invariants still apply.
            baseline = {}
        else:
            baseline = json.loads(base_path.read_text(encoding="utf-8"))
        if not cand_path.exists():
            rows.append(Row(name, "(file)", "present" if baseline else None,
                            None, "presence", False,
                            "candidate payload not generated"))
            continue
        candidate = json.loads(cand_path.read_text(encoding="utf-8"))
        rows.extend(compare_bench(name, bench, baseline, candidate, tolerance))
    return rows


def render_markdown(rows: List[Row], tolerance: float) -> str:
    failed = [row for row in rows if not row.ok]
    lines = [
        "## Benchmark regression check",
        "",
        f"{len(rows) - len(failed)}/{len(rows)} checks passed "
        f"(relative tolerance {tolerance:.0%} on same-mode runs; absolute "
        "floors on cross-mode runs).",
        "",
        "| bench | metric | baseline | candidate | basis | status |",
        "|---|---|---|---|---|---|",
    ]
    lines.extend(row.markdown() for row in rows)
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="benchmarks/results",
                        help="directory with the committed BENCH_*.json")
    parser.add_argument("--candidate-dir", required=True,
                        help="directory with the freshly generated payloads")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="max relative regression for same-mode runs")
    args = parser.parse_args(argv)

    rows = run_compare(pathlib.Path(args.baseline_dir),
                       pathlib.Path(args.candidate_dir), args.tolerance)
    summary = render_markdown(rows, args.tolerance)
    print(summary)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write(summary + "\n")

    failed = [row for row in rows if not row.ok]
    if failed:
        print(f"\nFAIL: {len(failed)} benchmark check(s) regressed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
