"""Figure 10: Up/Down vs route traces, slope + y-intercept separation.

Paper: Route-1 slopes sit within (-1, 1) while stair-like traces sit
outside; slope alone confuses Routes 2/3 with Up/Down, but the joint
(slope, y-intercept) features separate them cleanly.
"""

from __future__ import annotations

from repro.experiments.fig10 import run_fig10


def test_fig10_floor_traces(benchmark, publish, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig10("echo", deployment=0, seed=10), rounds=1, iterations=1,
    )
    publish("fig10_floor_traces", result.render())
    from repro.analysis.export import export_trace_features
    export_trace_features(result, results_dir / "fig10_traces.csv")
    stats = result.route_stats("training")
    # The paper's slope gate at +-1.
    assert abs(stats["route1"]["slope_min"]) < 1.0
    assert abs(stats["route1"]["slope_max"]) < 1.0
    for route in ("up", "down", "route2", "route3"):
        assert min(abs(stats[route]["slope_min"]), abs(stats[route]["slope_max"])) > 1.0
    # Routes 2/3 overlap Up/Down in slope but split on intercept.
    assert abs(stats["route2"]["intercept_mean"] - stats["up"]["intercept_mean"]) > 1.0
    assert abs(stats["route3"]["intercept_mean"] - stats["down"]["intercept_mean"]) > 1.0
    assert result.accuracy() >= 0.9
