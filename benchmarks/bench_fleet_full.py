#!/usr/bin/env python
"""Full-fidelity fleet benchmark: warm-start pool vs cold world builds.

Streams one synthesized population through ``--fidelity full`` twice —
once restoring each home from the warm-start scenario pool
(``full_build="pooled"``), once rebuilding every world from scratch
(``full_build="cold"``) — and reports homes/sec for both.  Before any
cell is timed, every home in the population is simulated down both
paths and its guard event stream asserted byte-identical, and each
timed repetition's rendered fleet table is asserted equal to the
reference; the speedup is only meaningful because the two paths are
provably the same simulation.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_fleet_full.py
    PYTHONPATH=src python benchmarks/bench_fleet_full.py --smoke

Writes ``benchmarks/results/BENCH_fleet_full.json``.  The full run
(200 homes) enforces the >= 5x pooled-vs-cold homes/sec floor;
``--smoke`` exercises the path and the equality assertions only.

Methodology and the snapshot/reset protocol are documented next to the
artifact in ``benchmarks/results/BENCH_fleet_full.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import List

from repro.experiments.bench_sim import guard_event_stream
from repro.experiments.fleet import FleetConfig, clear_scenario_pool, run_fleet
from repro.experiments.pool import ScenarioPool, build_home_cold, pool_key
from repro.experiments.synthesis import HomeSpec, PopulationModel
from repro.experiments.workload import SevenDayWorkload

SPEEDUP_FLOOR = 5.0  # pooled vs cold homes/sec, enforced at N >= 200

FULL_HOMES = 200
SMOKE_HOMES = 12
SHARDS = 4
REPEATS = 2

# The build-bound regime the pool targets: house worlds (training +
# calibration dominate their builds) with short per-home workloads, so
# per-home cost is world construction, not episode simulation.  Two
# plan-scale buckets keep template count realistic without letting
# bucket-miss builds dominate the pooled side at N=200.
BENCH_POPULATION = PopulationModel(
    testbed_mix=(("house", 1.0),),
    plan_scales=(1.0, 1.075),
    attack_prevalence=0.25,
    legit_commands_mean=2.0,
    attacks_mean=1.0,
)


def _bench_config(homes: int, seed: int, full_build: str) -> FleetConfig:
    return FleetConfig(homes=homes, shards=SHARDS, seed=seed, chunk_size=8,
                       fidelity="full", full_build=full_build,
                       population=BENCH_POPULATION)


def _specs(config: FleetConfig) -> List[HomeSpec]:
    return [
        config.population.home(config.seed, shard, offset,
                               config.shard_start(shard) + offset)
        for shard in range(config.shards)
        for offset in range(config.shard_size(shard))
    ]


def _home_stream(scenario, spec: HomeSpec) -> tuple:
    workload = SevenDayWorkload(scenario)
    workload.run(spec.legit_commands, spec.attacks)
    scenario.speaker.settle_all()
    return guard_event_stream(scenario.guard)


def verify_equality(config: FleetConfig) -> dict:
    """Phase 1: every home's pooled stream == its cold stream.

    Runs before any timing.  As a side effect the process-local
    calibration/training memos and the verification pool's fleet-world
    cache warm up; the timed pooled cells measure the steady state a
    long fleet run amortizes into, while timed cold cells rebuild
    worlds with memos bypassed by construction (``memo_bucket=None``).
    """
    pool = ScenarioPool()
    mismatches = []
    start = time.perf_counter()
    specs = _specs(config)
    for spec in specs:
        pooled_stream = _home_stream(pool.acquire(spec), spec)
        cold_stream = _home_stream(build_home_cold(spec), spec)
        if pooled_stream != cold_stream:
            mismatches.append(spec.index)
    return {
        "homes_verified": len(specs),
        "buckets": pool.template_builds,
        "bucket_keys": sorted(str(pool_key(spec)) for spec in
                              {pool_key(s): s for s in specs}.values()),
        "stream_mismatches": mismatches,
        "elapsed_s": time.perf_counter() - start,
    }


def run_bench(seed: int = 3, smoke: bool = False, repeats: int = REPEATS) -> dict:
    homes = SMOKE_HOMES if smoke else FULL_HOMES
    pooled_config = _bench_config(homes, seed, "pooled")
    cold_config = _bench_config(homes, seed, "cold")

    verification = verify_equality(pooled_config)

    # Reference table: the pooled serial run (after verification the
    # worker pool is cold-started fresh so the first timed rep pays
    # its own template builds; later reps are pure steady state).
    clear_scenario_pool()
    table_mismatches = 0
    pooled_cells: List[dict] = []
    cold_cells: List[dict] = []
    reference_table = None
    for _ in range(max(1, repeats)):
        pooled = run_fleet(pooled_config, workers=1)
        if reference_table is None:
            reference_table = pooled.render()
        elif pooled.render() != reference_table:
            table_mismatches += 1
        pooled_cells.append({"elapsed_s": pooled.elapsed,
                             "homes_per_sec": pooled.homes_per_sec})
        cold = run_fleet(cold_config, workers=1)
        if cold.render() != reference_table:
            table_mismatches += 1
        cold_cells.append({"elapsed_s": cold.elapsed,
                           "homes_per_sec": cold.homes_per_sec})

    best_pooled = max(cell["homes_per_sec"] for cell in pooled_cells)
    best_cold = max(cell["homes_per_sec"] for cell in cold_cells)
    speedup = best_pooled / best_cold if best_cold > 0 else float("inf")
    return {
        "bench": "fleet_full_fidelity",
        "homes": homes,
        "seed": seed,
        "smoke": smoke,
        "repeats": max(1, repeats),
        "verification": verification,
        "pooled_cells": pooled_cells,
        "cold_cells": cold_cells,
        "pooled_homes_per_sec": best_pooled,
        "cold_homes_per_sec": best_cold,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "streams_identical": not verification["stream_mismatches"],
        "tables_identical": table_mismatches == 0,
        "table_mismatches": table_mismatches,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def render(payload: dict) -> str:
    verification = payload["verification"]
    lines = [
        f"fleet full-fidelity bench ({payload['homes']} homes, "
        f"seed {payload['seed']}):",
        f"  equality gate     : {verification['homes_verified']} homes x "
        f"(pooled, cold) byte-identical guard streams "
        f"across {verification['buckets']} world buckets "
        f"({verification['elapsed_s']:.1f}s)"
        if payload["streams_identical"] else
        f"  equality gate     : FAILED on homes "
        f"{verification['stream_mismatches']}",
    ]
    for label, cells in (("pooled", payload["pooled_cells"]),
                         ("cold", payload["cold_cells"])):
        for index, cell in enumerate(cells):
            lines.append(
                f"  {label:<7} rep {index + 1}     : "
                f"{cell['elapsed_s']:.2f}s  "
                f"({cell['homes_per_sec']:.1f} homes/sec)")
    lines.append(
        f"  speedup           : {payload['speedup']:.2f}x pooled vs cold "
        f"(floor {payload['speedup_floor']:.0f}x at N>={FULL_HOMES})")
    lines.append(
        f"  tables identical across all reps: {payload['tables_identical']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="timed repetitions per cell (best is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"{SMOKE_HOMES}-home run: exercises the path and "
                             "the equality gate, numbers not citable")
    parser.add_argument("--output",
                        default="benchmarks/results/BENCH_fleet_full.json")
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, smoke=args.smoke,
                        repeats=args.repeats)
    print(render(payload))

    target = pathlib.Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"(written to {target})")

    if not payload["streams_identical"]:
        print("FAIL: pooled and cold guard event streams differ — the pool "
              "is not a faithful snapshot/restore", file=sys.stderr)
        return 1
    if not payload["tables_identical"]:
        print(f"FAIL: {payload['table_mismatches']} timed cell(s) rendered a "
              "different fleet table than the reference", file=sys.stderr)
        return 1
    if not args.smoke and payload["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: pooled speedup {payload['speedup']:.2f}x below the "
              f"{SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
