#!/usr/bin/env sh
# Refresh the committed benchmark artifacts.
#
#   benchmarks/run_benches.sh          # kernel benches -> BENCH_rssi.json,
#                                      # BENCH_sim.json, BENCH_obs.json,
#                                      # BENCH_fleet.json,
#                                      # BENCH_fleet_full.json
#   benchmarks/run_benches.sh --smoke  # same benches at minimal wall time:
#                                      # exercises the whole path (CI's
#                                      # bench job), numbers not citable
#   benchmarks/run_benches.sh --all    # also re-run the full pytest bench
#                                      # suite (regenerates every table and
#                                      # figure artifact under results/)
#
# Run from the repository root.  Both kernel benches assert, before
# timing, that the optimized path reproduces the reference bit-for-bit
# (RSSI: batched kernels vs scalar reference; sim: guard event streams
# legacy vs current kernel), so a passing run doubles as an
# equivalence check.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src
export PYTHONPATH

if [ "${1:-}" = "--smoke" ]; then
    python -m repro bench-rssi --seed 7 --seconds 0.05 \
        --output benchmarks/results/BENCH_rssi.json
    python -m repro bench-sim --seed 11 --smoke \
        --output benchmarks/results/BENCH_sim.json
    python benchmarks/bench_obs_overhead.py --smoke \
        --output benchmarks/results/BENCH_obs.json
    python benchmarks/bench_fleet.py --smoke \
        --output benchmarks/results/BENCH_fleet.json
    python benchmarks/bench_fleet_full.py --smoke \
        --output benchmarks/results/BENCH_fleet_full.json
    exit 0
fi

python -m repro bench-rssi --seed 7 --output benchmarks/results/BENCH_rssi.json
python -m repro bench-sim --seed 11 --output benchmarks/results/BENCH_sim.json
python benchmarks/bench_obs_overhead.py --output benchmarks/results/BENCH_obs.json
python benchmarks/bench_fleet.py --output benchmarks/results/BENCH_fleet.json
python benchmarks/bench_fleet_full.py --output benchmarks/results/BENCH_fleet_full.json

if [ "${1:-}" = "--all" ]; then
    python -m pytest benchmarks/ -q
fi
