#!/usr/bin/env sh
# Refresh the committed benchmark artifacts.
#
#   benchmarks/run_benches.sh          # kernel benches -> BENCH_rssi.json,
#                                      # BENCH_sim.json, BENCH_obs.json,
#                                      # BENCH_fleet.json,
#                                      # BENCH_fleet_full.json,
#                                      # BENCH_load.json,
#                                      # BENCH_recognition.json
#   benchmarks/run_benches.sh --smoke  # same benches at minimal wall time:
#                                      # exercises the whole path (CI's
#                                      # bench job), numbers not citable
#   benchmarks/run_benches.sh --all    # also re-run the full pytest bench
#                                      # suite (regenerates every table and
#                                      # figure artifact under results/)
#
# Run from the repository root.  $BENCH_RESULTS_DIR overrides where the
# JSON payloads land (default benchmarks/results); CI's bench-regression
# job points it at a scratch directory so the committed baselines stay
# untouched for benchmarks/compare_benches.py to compare against.
#
# Every bench asserts, before timing, that the optimized path reproduces
# its reference bit-for-bit (RSSI: batched kernels vs scalar reference;
# sim: guard event streams legacy vs current kernel; load: concurrency
# knobs on vs off on a single flow; recognition: same-seed retrains and
# serial-vs-parallel grid tables), so a passing run doubles as an
# equivalence check.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src
export PYTHONPATH

OUT="${BENCH_RESULTS_DIR:-benchmarks/results}"
mkdir -p "$OUT"

if [ "${1:-}" = "--smoke" ]; then
    python -m repro bench-rssi --seed 7 --seconds 0.05 \
        --output "$OUT/BENCH_rssi.json"
    python -m repro bench-sim --seed 11 --smoke \
        --output "$OUT/BENCH_sim.json"
    python benchmarks/bench_obs_overhead.py --smoke \
        --output "$OUT/BENCH_obs.json"
    python benchmarks/bench_fleet.py --smoke \
        --output "$OUT/BENCH_fleet.json"
    python benchmarks/bench_fleet_full.py --smoke \
        --output "$OUT/BENCH_fleet_full.json"
    python benchmarks/bench_load.py --smoke \
        --output "$OUT/BENCH_load.json"
    python benchmarks/bench_recognition.py --smoke \
        --output "$OUT/BENCH_recognition.json"
    exit 0
fi

python -m repro bench-rssi --seed 7 --output "$OUT/BENCH_rssi.json"
python -m repro bench-sim --seed 11 --output "$OUT/BENCH_sim.json"
python benchmarks/bench_obs_overhead.py --output "$OUT/BENCH_obs.json"
python benchmarks/bench_fleet.py --output "$OUT/BENCH_fleet.json"
python benchmarks/bench_fleet_full.py --output "$OUT/BENCH_fleet_full.json"
python benchmarks/bench_load.py --output "$OUT/BENCH_load.json"
python benchmarks/bench_recognition.py --output "$OUT/BENCH_recognition.json"

if [ "${1:-}" = "--all" ]; then
    python -m pytest benchmarks/ -q
fi
