"""Figure 9: RSSI maps for the second deployment location, all testbeds."""

from __future__ import annotations

from repro.experiments.rssi_maps import run_rssi_map


def test_fig9_maps_second_deployment(benchmark, publish):
    house = benchmark.pedantic(
        lambda: run_rssi_map("house", 1, seed=8), rounds=1, iterations=1,
    )
    apartment = run_rssi_map("apartment", 1, seed=8)
    office = run_rssi_map("office", 1, seed=8)
    text = "\n\n".join(r.render() for r in (house, apartment, office))
    publish("fig9_rssi_maps", text)
    for result in (house, apartment, office):
        assert result.in_room_fraction_above_threshold() >= 0.9, result.testbed
        assert result.away_fraction_below_threshold() >= 0.9, result.testbed
