"""Table IV: the RSSI method in the office, smartwatch-carried (4 cells).

Paper accuracies: 97.73 / 97.95 / 99.29 / 98.59 %, recall 100 %.
"""

from __future__ import annotations

from repro.experiments.rssi_tables import run_rssi_table


def test_table4_office(benchmark, publish, results_dir):
    result = benchmark.pedantic(
        lambda: run_rssi_table("office", seed=9), rounds=1, iterations=1,
    )
    publish("table4_office", result.render() + "\n\n" + result.render_with_paper())
    from repro.analysis.export import export_table_cells
    export_table_cells(result, results_dir / "office_cells.csv")
    for cell in result.cells:
        assert cell.matrix.accuracy >= 0.93, cell.scenario_name
        assert cell.matrix.recall >= 0.95, cell.scenario_name
