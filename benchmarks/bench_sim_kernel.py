"""Sim-kernel benchmark (the PR-5 timer-churn fix).

Times the full house/echo workload under the pre-optimization kernel
(kept runnable behind ``repro.sim.compat``) and the current kernel, on
both the compressed-gap workload and the paper's real seven-day
timeline, and publishes ``BENCH_sim.json``.

``run_bench_sim`` asserts — on every run, before any number is
published — that the guard's command-event stream and the final
simulated clock are identical between the two kernels: the speedup is
required to be byte-identical, not just "close".

The acceptance bar is the seven-day cell: the legacy kernel pays for
~2.4M idle motion-sensor polls plus a heap entry per heartbeat
timer re-arm across ~6.9 simulated days, and the fix must win >= 5x.
"""

from __future__ import annotations

import json

from repro.experiments.bench_sim import render_bench, run_bench_sim

SEVEN_DAY_FLOOR = 5.0  # the ISSUE's acceptance bar
SEED = 11
REPEATS = 3  # interleaved; min per mode cancels warm-up and load spikes


def test_bench_sim_kernel(publish, results_dir):
    payload = run_bench_sim(seed=SEED, repeats=REPEATS)
    publish("bench_sim_kernel", render_bench(payload))
    (results_dir / "BENCH_sim.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert payload["speedups"]["seven_day"] >= SEVEN_DAY_FLOOR
    # The compressed cell has no idle time to reclaim; it must still
    # win on pure per-packet/per-timer overhead.
    assert payload["speedups"]["compressed_gap"] > 1.0
    for cell in payload["cells"].values():
        assert cell["streams_identical"]
