"""Table I: voice-command traffic recognition on the Echo Dot.

Paper: 134 invocations -> 238 recognizer triggers; accuracy 99.29 %,
precision 100 %, recall 98.51 % (2 command spikes missed, no response
spike mistaken for a command).
"""

from __future__ import annotations

from repro.experiments.table1 import PAPER_PRECISION, PAPER_RECALL, run_table1


def test_table1_recognition(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_table1(seed=2), rounds=1, iterations=1,
    )
    text = result.render() + (
        f"\npaper: precision {PAPER_PRECISION:.2%}, recall {PAPER_RECALL:.2%}"
        f" | measured: precision {result.matrix.precision:.2%},"
        f" recall {result.matrix.recall:.2%}"
        f" | misses were {result.missed_variants or 'none'}"
    )
    publish("table1_recognition", text)
    # Shape assertions: no false positives ever; only the rare
    # anomalous command spikes are missed.
    assert result.matrix.precision == 1.0
    assert result.matrix.recall >= 0.95
    assert all(v == "anomalous" for v in result.missed_variants)
