#!/usr/bin/env python
"""Recognizer robustness benchmark: determinism gates + the arms race.

Three things, in order:

1. **Determinism gate** — the trainable recognizers are retrained from
   scratch in two fresh hubs with the same seed; the MLP's full weight
   blob and both recognizers' predictions over an evaluation set must
   be bit-identical (``weights_identical``).  The robustness grid is
   then rendered serially and at ``workers=2``; the two tables must be
   byte-identical (``tables_identical``).  Both are asserted per run —
   smoke proves them as hard as full.

2. **Arms race floors** — from the same grid: the worst morphing
   adversary must cost the signature matcher at least
   ``DROP_FLOOR_POINTS`` of echo accuracy (the attack is real), and the
   knn recognizer retrained on that adversary's morphs must land within
   ``RETRAIN_GAP_CEILING`` points of its clean baseline (the defence is
   real).  These are the experiment's acceptance criteria, pinned as
   bench metrics.

3. **Throughput** — windows/sec through ``predict_window`` for the
   trained knn and mlp recognizers (feature extraction included), with
   an absolute floor: a learned recognizer that cannot keep up with a
   home's window rate would be unusable inline.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_recognition.py
    PYTHONPATH=src python benchmarks/bench_recognition.py --smoke

Writes ``benchmarks/results/BENCH_recognition.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.core.recognizers import synth_windows, train_window_recognizer
from repro.experiments.parallel import derive_seed
from repro.experiments.recognition_robustness import run_recognition_robustness
from repro.sim.random import RngHub

import numpy as np

DROP_FLOOR_POINTS = 20.0  # worst morph must cost the signature matcher this
RETRAIN_GAP_CEILING = 10.0  # retrained knn must land this close to clean
THROUGHPUT_FLOOR = 200.0  # predict_window calls/sec, knn and mlp


def _train_twice(kind: str, seed: int, per_class: int):
    """The same recognizer trained in two fresh same-seed hubs."""
    first = train_window_recognizer(kind, "echo", RngHub(seed),
                                    train_per_class=per_class)
    second = train_window_recognizer(kind, "echo", RngHub(seed),
                                     train_per_class=per_class)
    return first, second


def assert_training_deterministic(seed: int, per_class: int) -> None:
    """Same seed => bit-identical weights and predictions; raises on drift."""
    mlp_a, mlp_b = _train_twice("mlp", seed, per_class)
    if mlp_a.weight_bytes() != mlp_b.weight_bytes():
        raise AssertionError("same-seed MLP trainings produced different weights")
    knn_a, knn_b = _train_twice("knn", seed, per_class)
    probe = synth_windows(
        "echo", np.random.default_rng(derive_seed(seed, "bench.probe")), 10)
    for sample in probe:
        pa = knn_a.predict_window(sample.lengths, sample.offsets)
        pb = knn_b.predict_window(sample.lengths, sample.offsets)
        if pa is not pb:
            raise AssertionError("same-seed knn trainings disagree on a window")


def measure_throughput(kind: str, seed: int, per_class: int,
                       min_seconds: float) -> float:
    """predict_window calls/sec for a trained recognizer."""
    recognizer = train_window_recognizer(kind, "echo", RngHub(seed),
                                         train_per_class=per_class)
    windows = synth_windows(
        "echo", np.random.default_rng(derive_seed(seed, "bench.throughput")), 25)
    calls = 0
    start = time.perf_counter()
    while True:
        for sample in windows:
            recognizer.predict_window(sample.lengths, sample.offsets)
        calls += len(windows)
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return calls / elapsed


def run_bench(seed: int = 3, smoke: bool = False,
              min_seconds: float = 0.2) -> dict:
    per_class = 12 if smoke else 30
    assert_training_deterministic(seed, per_class)

    start = time.perf_counter()
    serial = run_recognition_robustness(seed=seed, smoke=smoke, workers=1)
    parallel = run_recognition_robustness(seed=seed, smoke=smoke, workers=2)
    elapsed = time.perf_counter() - start
    if serial.render() != parallel.render():
        raise AssertionError(
            "recognition grid differs between workers=1 and workers=2")

    clean = serial.cell("echo", "signature", "none")
    adversary, morphed = serial.worst_morph("echo", "signature")
    drop_points = (clean.accuracy - morphed) * 100.0
    knn_clean = serial.cell("echo", "knn", "none")
    knn_retrained = serial.cell("echo", "knn", adversary, adaptive=True)
    gap_points = abs(knn_clean.accuracy - knn_retrained.accuracy) * 100.0

    return {
        "bench": "recognition",
        "seed": seed,
        "smoke": smoke,
        "weights_identical": True,  # asserted above, before any timing
        "tables_identical": True,  # serial vs workers=2, asserted above
        "cells": len(serial.cells),
        "worst_adversary": adversary,
        "signature_clean_accuracy": round(clean.accuracy, 6),
        "signature_morphed_accuracy": round(morphed, 6),
        "signature_drop_points": round(drop_points, 3),
        "drop_floor_points": DROP_FLOOR_POINTS,
        "knn_clean_accuracy": round(knn_clean.accuracy, 6),
        "knn_retrained_accuracy": round(knn_retrained.accuracy, 6),
        "retrain_gap_points": round(gap_points, 3),
        "retrain_gap_ceiling": RETRAIN_GAP_CEILING,
        "throughput": {
            "knn_windows_per_sec": round(
                measure_throughput("knn", seed, per_class, min_seconds), 1),
            "mlp_windows_per_sec": round(
                measure_throughput("mlp", seed, per_class, min_seconds), 1),
        },
        "throughput_floor": THROUGHPUT_FLOOR,
        "wall_elapsed_s": round(elapsed, 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def render(payload: dict) -> str:
    thr = payload["throughput"]
    return "\n".join([
        f"recognition robustness bench (seed {payload['seed']}"
        f"{', smoke' if payload['smoke'] else ''}):",
        "  determinism: same-seed retrains bit-identical; grid table "
        "byte-identical serial vs workers=2",
        f"  arms race ({payload['cells']} cells): signature "
        f"{payload['signature_clean_accuracy']:.2%} clean -> "
        f"{payload['signature_morphed_accuracy']:.2%} under "
        f"{payload['worst_adversary']} "
        f"({payload['signature_drop_points']:.0f} points, floor "
        f"{payload['drop_floor_points']:.0f}); knn+retrain within "
        f"{payload['retrain_gap_points']:.0f} points of clean (ceiling "
        f"{payload['retrain_gap_ceiling']:.0f})",
        f"  throughput: knn {thr['knn_windows_per_sec']:.0f} windows/s, "
        f"mlp {thr['mlp_windows_per_sec']:.0f} windows/s (floor "
        f"{payload['throughput_floor']:.0f})",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="echo corner cells only: exercises the path and "
                             "both determinism gates, numbers not citable")
    parser.add_argument("--seconds", type=float, default=0.2,
                        help="minimum wall time per throughput measurement")
    parser.add_argument("--output",
                        default="benchmarks/results/BENCH_recognition.json")
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, smoke=args.smoke,
                        min_seconds=args.seconds)
    print(render(payload))

    target = pathlib.Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"(written to {target})")

    failures = []
    if payload["signature_drop_points"] < DROP_FLOOR_POINTS:
        failures.append(
            f"signature drop {payload['signature_drop_points']:.0f} points "
            f"below the {DROP_FLOOR_POINTS:.0f}-point floor")
    if payload["retrain_gap_points"] > RETRAIN_GAP_CEILING:
        failures.append(
            f"retrain gap {payload['retrain_gap_points']:.0f} points above "
            f"the {RETRAIN_GAP_CEILING:.0f}-point ceiling")
    for name, value in payload["throughput"].items():
        if value < THROUGHPUT_FLOOR:
            failures.append(f"{name} {value:.0f}/s below the "
                            f"{THROUGHPUT_FLOOR:.0f}/s floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
