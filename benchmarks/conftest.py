"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered output is printed and also written to ``benchmarks/results/``
so the artifacts survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """``publish(name, text)`` prints and persists a rendered artifact."""

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _publish
