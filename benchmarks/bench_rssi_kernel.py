"""RSSI kernel microbenchmarks (the PR-2 vectorized substrate).

Times every layer of the radio hot path — the pre-optimization scalar
reference, the memoized scalar path, the vectorized batch APIs, the
wall-crossing kernels, and event-queue dispatch — and publishes both a
human-readable table and the machine-readable ``BENCH_rssi.json``
consumed by perf-regression tooling.

The equivalence between the reference and the batched grid kernel is
asserted inside ``run_bench_rssi`` before anything is timed.
"""

from __future__ import annotations

import json

from repro.experiments.bench_rssi import render_bench, run_bench_rssi

# Keep the pytest pass quick; the committed BENCH_rssi.json artifact is
# refreshed by benchmarks/run_benches.sh with the default (longer)
# per-bench budget.
MIN_SECONDS = 0.05
GRID_MAP_FLOOR = 5.0  # the ISSUE's acceptance bar for the grid kernel


def test_bench_rssi_kernel(publish, results_dir):
    payload = run_bench_rssi(testbed_name="house", seed=7, min_seconds=MIN_SECONDS)
    publish("bench_rssi_kernel", render_bench(payload))
    (results_dir / "BENCH_rssi.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert payload["speedups"]["grid_map"] >= GRID_MAP_FLOOR
    # The O(1) len() must stay far cheaper than a queue operation.
    assert (
        payload["benches"]["pending_events_read_10k"]["usec_per_op"]
        < payload["benches"]["event_push_pop"]["usec_per_op"]
    )
