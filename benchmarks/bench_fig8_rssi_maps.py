"""Figure 8: RSSI maps for the first deployment location, all testbeds.

Paper claims reproduced as assertions: the speaker's room (plus
line-of-sight spots) reads above the calibrated threshold, other rooms
read below it, and in the house the six locations directly above the
speaker (#55, #56, #59-62) leak above the threshold.
"""

from __future__ import annotations

from repro.experiments.rssi_maps import run_rssi_map
from repro.radio.testbeds import HOUSE_LEAK_POINT_NUMBERS


def test_fig8_maps_first_deployment(benchmark, publish, results_dir):
    house = benchmark.pedantic(
        lambda: run_rssi_map("house", 0, seed=8), rounds=1, iterations=1,
    )
    apartment = run_rssi_map("apartment", 0, seed=8)
    office = run_rssi_map("office", 0, seed=8)
    text = "\n\n".join(r.render() for r in (house, apartment, office))
    publish("fig8_rssi_maps", text)
    from repro.analysis.export import export_rssi_map
    for result in (house, apartment, office):
        export_rssi_map(result, results_dir / f"fig8_{result.testbed}_map.csv")
    for result in (house, apartment, office):
        assert result.in_room_fraction_above_threshold() >= 0.9, result.testbed
        assert result.away_fraction_below_threshold() >= 0.9, result.testbed
    assert set(house.leak_points_above_threshold()) == set(HOUSE_LEAK_POINT_NUMBERS)
