"""Smoke benchmark for the parallel experiment engine.

Runs the CLI equivalent of ``python -m repro report --scale 0.1
--workers 2 --no-cache`` end to end: every section regenerates on a
two-worker process pool, exercising task pickling, result transport,
and the ordered reassembly of the report.
"""

from __future__ import annotations


def test_parallel_report_smoke(publish, capsys):
    from repro.__main__ import main

    assert main(["report", "--scale", "0.1", "--workers", "2",
                 "--no-cache", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "VoiceGuard reproduction report" in out
    assert "Table II" in out and "hold endurance" in out
    publish("parallel_report_smoke", out)
