"""Table II: the RSSI method in the two-floor house (4 cells).

Paper accuracies: 98.75 / 98.34 / 97.48 / 97.32 %, recall ~100 %.
"""

from __future__ import annotations

from repro.experiments.rssi_tables import run_rssi_table


def test_table2_house(benchmark, publish, results_dir):
    result = benchmark.pedantic(
        lambda: run_rssi_table("house", seed=5), rounds=1, iterations=1,
    )
    publish("table2_house", result.render() + "\n\n" + result.render_with_paper())
    from repro.analysis.export import export_table_cells
    export_table_cells(result, results_dir / "house_cells.csv")
    for cell in result.cells:
        assert cell.matrix.accuracy >= 0.93, cell.scenario_name
        assert cell.matrix.recall >= 0.95, cell.scenario_name
