"""Throughput microbenchmarks of the hot paths.

Unlike the table/figure benches (single-shot experiment regenerations),
these use pytest-benchmark's statistics to track the per-operation cost
of the substrate: event dispatch, RSSI evaluation, the length
classifier, and proxied TCP record delivery.
"""

from __future__ import annotations

import numpy as np

from repro.core.recognition import classify_echo_lengths
from repro.radio.propagation import PropagationModel
from repro.radio.testbeds import house_testbed
from repro.sim.simulator import Simulator


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_propagation_mean_rssi(benchmark):
    testbed = house_testbed()
    model = PropagationModel(testbed.plan, seed=1)
    tx = testbed.speaker_point(0)
    points = [mp.point for mp in testbed.plan.points.values()]

    def sweep():
        return sum(model.mean_rssi(tx, p) for p in points)

    benchmark(sweep)


def test_classifier_throughput(benchmark):
    rng = np.random.default_rng(0)
    spikes = [list(rng.integers(30, 700, size=7)) for _ in range(500)]
    spikes[::3] = [[277, 138, 131, 73, 113, 50, 50]] * len(spikes[::3])

    def classify_all():
        return [classify_echo_lengths(s) for s in spikes]

    results = benchmark(classify_all)
    assert len(results) == 500


def test_proxied_tcp_record_throughput(benchmark):
    from repro.net.addresses import Endpoint, IPv4Address
    from repro.net.link import Host, Network
    from repro.net.proxy import TransparentProxy
    from repro.net.tcp import TcpStack
    from repro.sim.random import RngHub

    def push_200_records():
        sim = Simulator()
        network = Network(sim, RngHub(1))
        speaker = Host("speaker", IPv4Address("192.168.1.200"))
        server = Host("server", IPv4Address("54.1.1.1"))
        network.attach(speaker)
        network.attach(server)
        speaker_stack = TcpStack(speaker)
        server_stack = TcpStack(server)
        proxy = TransparentProxy("guard", IPv4Address("192.168.1.50"))
        proxy.install(network, speaker.ip)
        received = []
        server_stack.listen(
            443, lambda c: setattr(c, "on_record", lambda _, p: received.append(p))
        )
        conn = speaker_stack.connect(Endpoint(server.ip, 443))
        sim.run_for(1.0)
        for seq in range(200):
            conn.send_record(512, tls_record_seq=seq)
        sim.run_for(5.0)
        return len(received)

    assert benchmark(push_200_records) == 200
