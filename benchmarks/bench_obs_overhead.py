#!/usr/bin/env python
"""Observability overhead microbenchmark.

Runs the Table-2 house cell (Echo Dot, location 1) twice — tracing off
and tracing on — and measures the wall-time overhead of span collection.
Before timing is trusted, the two runs' guard event streams are checked
for equality: instrumentation that changed a single event would be a
bug, not an acceptable cost.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke

Writes ``benchmarks/results/BENCH_obs.json``.  The full run enforces
the < 10 % overhead budget; ``--smoke`` exercises the same path at a
tiny workload where wall-clock noise dominates, so it only enforces
stream equality.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import List, Tuple

from repro.experiments.scenarios import build_scenario
from repro.experiments.workload import SevenDayWorkload

OVERHEAD_BUDGET = 0.10  # tracing may cost at most 10 % wall time

# The Table II house/echo/loc1 cell counts (paper totals).
FULL_COUNTS = (91, 69)
SMOKE_COUNTS = (10, 7)


def _event_stream(guard) -> List[tuple]:
    """The guard's command-event stream, as comparable tuples."""
    stream = []
    for event in guard.log.events:
        stream.append((
            event.window_id,
            event.flow_id,
            event.speaker_ip,
            event.protocol,
            event.opened_at,
            event.classification.value if event.classification else None,
            event.classified_at,
            event.classify_packet_count,
            event.verdict.value if event.verdict else None,
            event.verdict_at,
            event.released_at,
            event.discarded_at,
            event.held_records,
            tuple(repr(report) for report in event.rssi_reports),
        ))
    return stream


def _run_cell(tracing: bool, seed: int, legit: int,
              malicious: int) -> Tuple[float, List[tuple], int]:
    """One timed end-to-end cell run; returns (seconds, stream, spans)."""
    start = time.perf_counter()
    scenario = build_scenario("house", "echo", deployment=0, seed=seed,
                              owner_count=2, tracing=tracing)
    workload = SevenDayWorkload(scenario)
    workload.run(legit, malicious)
    scenario.speaker.settle_all()
    elapsed = time.perf_counter() - start
    return elapsed, _event_stream(scenario.guard), len(scenario.env.obs.tracer)


def run_bench(seed: int = 7, repeats: int = 3, smoke: bool = False) -> dict:
    """Time tracing-off vs tracing-on; returns the JSON payload."""
    legit, malicious = SMOKE_COUNTS if smoke else FULL_COUNTS
    repeats = 1 if smoke else repeats
    off_times: List[float] = []
    on_times: List[float] = []
    off_stream = on_stream = None
    span_count = 0
    for _ in range(repeats):
        elapsed, off_stream, _ = _run_cell(False, seed, legit, malicious)
        off_times.append(elapsed)
        elapsed, on_stream, span_count = _run_cell(True, seed, legit, malicious)
        on_times.append(elapsed)
    identical = off_stream == on_stream
    baseline, traced = min(off_times), min(on_times)
    overhead = (traced - baseline) / baseline if baseline > 0 else 0.0
    return {
        "bench": "obs_overhead",
        "scenario": "house/echo/loc1",
        "legit_count": legit,
        "malicious_count": malicious,
        "seed": seed,
        "repeats": repeats,
        "smoke": smoke,
        "baseline_s": baseline,
        "traced_s": traced,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "spans_collected": span_count,
        "events_identical": identical,
        "command_events": len(off_stream or []),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def render(payload: dict) -> str:
    return (
        f"obs overhead bench ({payload['scenario']}, "
        f"{payload['legit_count']}+{payload['malicious_count']} commands, "
        f"best of {payload['repeats']}):\n"
        f"  tracing off : {payload['baseline_s']:.3f}s\n"
        f"  tracing on  : {payload['traced_s']:.3f}s  "
        f"({payload['spans_collected']} spans)\n"
        f"  overhead    : {payload['overhead_fraction']:+.2%} "
        f"(budget {payload['overhead_budget']:.0%})\n"
        f"  event streams identical: {payload['events_identical']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload: checks the path, not the numbers")
    parser.add_argument("--output",
                        default="benchmarks/results/BENCH_obs.json")
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, repeats=args.repeats, smoke=args.smoke)
    print(render(payload))

    target = pathlib.Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"(written to {target})")

    if not payload["events_identical"]:
        print("FAIL: tracing changed the guard's event stream", file=sys.stderr)
        return 1
    if not args.smoke and payload["overhead_fraction"] > OVERHEAD_BUDGET:
        print(f"FAIL: tracing overhead {payload['overhead_fraction']:.2%} "
              f"exceeds the {OVERHEAD_BUDGET:.0%} budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
