#!/usr/bin/env python
"""Fleet dispatch benchmark: chunked vs one-task-per-submit.

Streams the same 10k-home fleet through the experiment engine under a
workers x chunk-size sweep of the chunked dispatcher, plus a per-task
baseline (one home per pool submit) at each worker count.  Before any
number is trusted, every cell's rendered fleet table is asserted
byte-identical to the serial run's: chunking, worker count, and
completion order must not change a single digit of the result.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke

Writes ``benchmarks/results/BENCH_fleet.json``.  The full run enforces
the >= 5x homes/sec floor for the best chunked cell over the per-task
baseline at the same worker count; ``--smoke`` (200 homes) exercises
the whole path and the identity assertions only.

Methodology notes live next to the artifact in
``benchmarks/results/BENCH_fleet.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
from typing import Dict, List

from repro.experiments.fleet import FleetConfig, run_fleet

SPEEDUP_FLOOR = 5.0  # best chunked cell vs same-workers per-task baseline

FULL_HOMES = 10_000
SMOKE_HOMES = 200
WORKER_COUNTS = (2, 4)
CHUNK_SIZES = (64, 256, 1024)


def run_bench(seed: int = 3, smoke: bool = False) -> dict:
    homes = SMOKE_HOMES if smoke else FULL_HOMES
    chunk_sizes = (16, 64) if smoke else CHUNK_SIZES
    config = FleetConfig(homes=homes, shards=8, seed=seed)

    # Reference: the serial streaming run.  Every other cell must
    # reproduce this table byte-for-byte.
    reference = run_fleet(config, workers=1)
    table = reference.render()

    cells: List[dict] = []
    baselines: Dict[int, dict] = {}
    mismatches = 0
    for workers in WORKER_COUNTS:
        base = run_fleet(config, workers=workers, dispatch="per-task")
        if base.render() != table:
            mismatches += 1
        baselines[workers] = {
            "workers": workers,
            "elapsed_s": base.elapsed,
            "homes_per_sec": base.homes_per_sec,
            "tasks": base.chunks,
        }
        for chunk in chunk_sizes:
            cell_config = FleetConfig(homes=homes, shards=8, seed=seed,
                                      chunk_size=chunk)
            run = run_fleet(cell_config, workers=workers)
            if run.render() != table:
                mismatches += 1
            cells.append({
                "workers": workers,
                "chunk_size": chunk,
                "elapsed_s": run.elapsed,
                "homes_per_sec": run.homes_per_sec,
                "tasks": run.chunks,
                "speedup_vs_per_task":
                    baselines[workers]["elapsed_s"] / run.elapsed,
            })

    best = max(cells, key=lambda cell: cell["speedup_vs_per_task"])
    return {
        "bench": "fleet_dispatch",
        "homes": homes,
        "seed": seed,
        "smoke": smoke,
        "serial_elapsed_s": reference.elapsed,
        "serial_homes_per_sec": reference.homes_per_sec,
        "per_task_baselines": list(baselines.values()),
        "chunked_cells": cells,
        "best_cell": best,
        "speedup": best["speedup_vs_per_task"],
        "speedup_floor": SPEEDUP_FLOOR,
        "tables_identical": mismatches == 0,
        "table_mismatches": mismatches,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def render(payload: dict) -> str:
    lines = [
        f"fleet dispatch bench ({payload['homes']} homes, "
        f"seed {payload['seed']}):",
        f"  serial            : {payload['serial_elapsed_s']:.2f}s  "
        f"({payload['serial_homes_per_sec']:,.0f} homes/sec)",
    ]
    for base in payload["per_task_baselines"]:
        lines.append(
            f"  per-task  w={base['workers']}     : {base['elapsed_s']:.2f}s  "
            f"({base['homes_per_sec']:,.0f} homes/sec, "
            f"{base['tasks']} submits)")
    for cell in payload["chunked_cells"]:
        lines.append(
            f"  chunked   w={cell['workers']} c={cell['chunk_size']:<4}: "
            f"{cell['elapsed_s']:.2f}s  "
            f"({cell['homes_per_sec']:,.0f} homes/sec, "
            f"{cell['speedup_vs_per_task']:.1f}x vs per-task)")
    best = payload["best_cell"]
    lines.append(
        f"  best speedup      : {payload['speedup']:.1f}x "
        f"(workers={best['workers']}, chunk={best['chunk_size']}; "
        f"floor {payload['speedup_floor']:.0f}x)")
    lines.append(
        f"  tables identical across all cells: {payload['tables_identical']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="200-home run: checks the path and the table "
                             "identity assertions, numbers not citable")
    parser.add_argument("--output",
                        default="benchmarks/results/BENCH_fleet.json")
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, smoke=args.smoke)
    print(render(payload))

    target = pathlib.Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"(written to {target})")

    if not payload["tables_identical"]:
        print(f"FAIL: {payload['table_mismatches']} cell(s) rendered a "
              "different fleet table than the serial reference",
              file=sys.stderr)
        return 1
    if not args.smoke and payload["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: best chunked speedup {payload['speedup']:.1f}x below "
              f"the {SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
