"""Ablations: defense matrix, floor tracking, AVS signatures, firewall.

These back DESIGN.md's design-choice claims:
* only VoiceGuard blocks the full attack gallery while passing the
  owner (voice-match stops just the live guest);
* without floor tracking, the above-speaker leak turns into missed
  attacks (the paper's Section V-B2 motivation);
* without connection-signature tracking, silent AVS IP changes orphan
  the guard (Section IV-B1);
* a packet-dropping firewall breaks sessions and loses legitimate
  commands after each block (Section I).
"""

from __future__ import annotations

from repro.experiments.ablation import (
    run_defense_matrix,
    run_firewall_comparison,
    run_floor_ablation,
    run_signature_ablation,
)


def test_defense_matrix(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_defense_matrix(seed=17, trials_per_attack=6, legit_trials=6),
        rounds=1, iterations=1,
    )
    publish("ablation_defense_matrix", result.render())
    for attack in ("replay", "synthesis", "inaudible", "laser", "remote_playback"):
        assert result.block_rate("voiceguard", attack) == 1.0, attack
        assert result.block_rate("none", attack) == 0.0, attack
        assert result.block_rate("voice_match", attack) <= 0.4, attack
    assert result.block_rate("voice_match", "live_guest") == 1.0
    assert result.block_rate("voiceguard", "live_owner") == 0.0


def test_floor_tracking_ablation(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_floor_ablation(seed=19, legit=50, malicious=40),
        rounds=1, iterations=1,
    )
    publish("ablation_floor_tracking", result.render())
    assert result.with_tracking.matrix.recall >= 0.95
    assert result.without_tracking.matrix.recall <= result.with_tracking.matrix.recall - 0.1


def test_signature_ablation(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_signature_ablation(seed=21, commands=20), rounds=1, iterations=1,
    )
    publish("ablation_signature", result.render())
    assert result.commands_checked_with == result.commands_total
    assert result.commands_checked_without < result.commands_checked_with


def test_firewall_comparison(benchmark, publish):
    result = benchmark.pedantic(
        lambda: run_firewall_comparison(seed=23, commands=25), rounds=1, iterations=1,
    )
    publish("ablation_firewall", result.render())
    assert result.proxy_executed >= result.firewall_executed
    assert result.firewall_sessions_broken > result.proxy_sessions_broken


def test_hold_endurance(benchmark, publish):
    from repro.experiments.hold_endurance import run_hold_endurance

    result = benchmark.pedantic(
        lambda: run_hold_endurance(holds=(2.0, 10.0, 30.0, 60.0), seed=29),
        rounds=1, iterations=1,
    )
    publish("ablation_hold_endurance", result.render())
    # The paper's claim: the proxy holds for dozens of seconds without
    # breaking anything; discarding can never be undone.
    assert result.max_survivable_hold("transparent proxy") >= 60.0
    assert result.max_survivable_hold("ack-and-discard") == 0.0


def test_media_campaign(benchmark, publish):
    """Section III-B's large-scale remote attack: one media payload set
    against a fleet of homes, protected vs not."""
    from repro.experiments.campaign import run_campaign

    result = benchmark.pedantic(
        lambda: run_campaign(homes=5, seed=200), rounds=1, iterations=1,
    )
    publish("ablation_media_campaign", result.render())
    assert result.executed_fraction(protected=False) >= 0.9
    assert result.executed_fraction(protected=True) == 0.0


def test_sensitivity_sweep(benchmark, publish):
    """Deployment knobs: the RSSI margin trades recall for precision;
    an aggressive decision timeout fails closed on everyone."""
    from repro.experiments.sensitivity import run_sensitivity

    result = benchmark.pedantic(
        lambda: run_sensitivity(seed=37, scale=30), rounds=1, iterations=1,
    )
    publish("ablation_sensitivity", result.render())
    margins = result.series("rssi_margin")
    assert margins[0].recall >= margins[-1].recall  # margin erodes recall
    timeouts = result.series("decision_timeout")
    assert timeouts[0].precision < timeouts[-1].precision
    assert all(p.recall == 1.0 for p in timeouts)  # fail-closed never misses
