"""Table III: the RSSI method in the two-bedroom apartment (4 cells).

Paper accuracies: 97.81 / 98.04 / 97.08 / 98.62 %; one missed attack
(Echo Dot, 2nd location: 64/65).
"""

from __future__ import annotations

from repro.experiments.rssi_tables import run_rssi_table


def test_table3_apartment(benchmark, publish, results_dir):
    result = benchmark.pedantic(
        lambda: run_rssi_table("apartment", seed=7), rounds=1, iterations=1,
    )
    publish("table3_apartment", result.render() + "\n\n" + result.render_with_paper())
    from repro.analysis.export import export_table_cells
    export_table_cells(result, results_dir / "apartment_cells.csv")
    for cell in result.cells:
        assert cell.matrix.accuracy >= 0.93, cell.scenario_name
        assert cell.matrix.recall >= 0.93, cell.scenario_name
